//! Prefix partitioning (Section 2.7).
//!
//! SPINE grows only at the tail and never mutates the labels of existing
//! nodes; every rib/extrib created while appending character `t` points *to*
//! node `t`. Hence the index of a length-`k` prefix of the text is literally
//! the initial fragment of the index: nodes `0..=k` plus exactly those
//! ribs/extribs whose destination is ≤ `k`. (Suffix trees cannot be
//! partitioned this way: a node high in the tree may be created arbitrarily
//! late.)
//!
//! [`SpinePrefix`] is a zero-copy view implementing that filter; the crate's
//! tests verify it is *structurally identical* to an index freshly built on
//! the prefix.

use crate::build::Spine;
use crate::node::{Extrib, NodeId, Rib, ROOT};
use strindex::{Alphabet, Code, StringIndex};

/// A read-only view of a [`Spine`] restricted to its first `len`
/// characters.
pub struct SpinePrefix<'a> {
    spine: &'a Spine,
    len: NodeId,
}

impl Spine {
    /// View this index as the index of its length-`len` prefix.
    ///
    /// # Panics
    /// Panics if `len > self.len()`.
    pub fn prefix(&self, len: usize) -> SpinePrefix<'_> {
        assert!(len <= self.len(), "prefix longer than the indexed text");
        SpinePrefix { spine: self, len: len as NodeId }
    }
}

impl SpinePrefix<'_> {
    /// Length of the viewed prefix.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Is the viewed prefix empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ribs of `node` that exist in the prefix fragment (destination ≤ len).
    pub fn ribs(&self, node: NodeId) -> impl Iterator<Item = &Rib> {
        let len = self.len;
        self.spine.nodes()[node as usize].ribs.iter().filter(move |r| r.dest <= len)
    }

    /// Extribs of `node` that exist in the prefix fragment.
    pub fn extribs(&self, node: NodeId) -> impl Iterator<Item = &Extrib> {
        let len = self.len;
        self.spine.nodes()[node as usize].extribs.iter().filter(move |e| e.dest <= len)
    }

    /// Valid-path step within the fragment (same rules as
    /// [`Spine::locate`], edges beyond the fragment invisible).
    fn step(&self, node: NodeId, pl: u32, c: Code) -> Option<NodeId> {
        if node < self.len && self.spine.nodes()[node as usize + 1].vertebra_cl == c {
            return Some(node + 1);
        }
        let rib = self.ribs(node).find(|r| r.cl == c)?;
        if pl <= rib.pt {
            return Some(rib.dest);
        }
        let prt = rib.pt;
        let mut at = rib.dest;
        loop {
            let e = self.spine.nodes()[at as usize].extrib(prt).filter(|e| e.dest <= self.len)?;
            if e.pt >= pl {
                return Some(e.dest);
            }
            at = e.dest;
        }
    }

    /// Walk the valid path for `pattern` within the fragment.
    pub fn locate(&self, pattern: &[Code]) -> Option<NodeId> {
        let mut node = ROOT;
        for (pl, &c) in pattern.iter().enumerate() {
            node = self.step(node, pl as u32, c)?;
        }
        Some(node)
    }
}

impl StringIndex for SpinePrefix<'_> {
    fn alphabet(&self) -> &Alphabet {
        self.spine.alphabet_ref()
    }

    fn text_len(&self) -> usize {
        self.len as usize
    }

    fn symbol_at(&self, pos: usize) -> Code {
        assert!(pos < self.len as usize);
        self.spine.nodes()[pos + 1].vertebra_cl
    }

    fn find_first(&self, pattern: &[Code]) -> Option<usize> {
        self.locate(pattern).map(|end| end as usize - pattern.len())
    }

    fn find_all(&self, pattern: &[Code]) -> Vec<usize> {
        if pattern.is_empty() {
            return Vec::new();
        }
        let Some(first) = self.locate(pattern) else {
            return Vec::new();
        };
        let plen = pattern.len() as u32;
        let mut buffer = vec![first];
        for j in first + 1..=self.len {
            let node = &self.spine.nodes()[j as usize];
            if node.lel >= plen && buffer.binary_search(&node.link).is_ok() {
                buffer.push(j);
            }
        }
        buffer.into_iter().map(|e| e as usize - pattern.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_is_structurally_a_fresh_build() {
        let a = Alphabet::dna();
        let full_text = a.encode(b"AACCACAACAGGTTACGACGACCA").unwrap();
        let full = Spine::build(a.clone(), &full_text).unwrap();
        for k in 0..=full_text.len() {
            let fresh = Spine::build(a.clone(), &full_text[..k]).unwrap();
            let view = full.prefix(k);
            for node in 0..=k as NodeId {
                let f = &fresh.nodes()[node as usize];
                if node != ROOT {
                    let v = &full.nodes()[node as usize];
                    assert_eq!((v.vertebra_cl, v.link, v.lel), (f.vertebra_cl, f.link, f.lel));
                }
                let mut view_ribs: Vec<Rib> = view.ribs(node).copied().collect();
                let mut fresh_ribs = f.ribs.clone();
                view_ribs.sort_by_key(|r| r.cl);
                fresh_ribs.sort_by_key(|r| r.cl);
                assert_eq!(view_ribs, fresh_ribs, "ribs at node {node}, prefix {k}");
                let mut view_ex: Vec<Extrib> = view.extribs(node).copied().collect();
                let mut fresh_ex = f.extribs.clone();
                view_ex.sort_by_key(|e| e.prt);
                fresh_ex.sort_by_key(|e| e.prt);
                assert_eq!(view_ex, fresh_ex, "extribs at node {node}, prefix {k}");
            }
        }
    }

    #[test]
    fn prefix_view_answers_prefix_queries() {
        let a = Alphabet::dna();
        let text = a.encode(b"AACCACAACA").unwrap();
        let s = Spine::build(a.clone(), &text).unwrap();
        let p = s.prefix(5); // "AACCA"
        let ca = a.encode(b"CA").unwrap();
        assert_eq!(p.find_all(&ca), vec![3]); // only the first CA is inside
        assert_eq!(s.find_all(&ca), vec![3, 5, 8]);
        // "ACAA" exists in the full text but not in the prefix.
        let acaa = a.encode(b"ACAA").unwrap();
        assert!(s.contains(&acaa));
        assert!(!p.contains(&acaa));
    }

    #[test]
    fn zero_prefix() {
        let a = Alphabet::dna();
        let s = Spine::build_from_bytes(a.clone(), b"ACGT").unwrap();
        let p = s.prefix(0);
        assert!(p.is_empty());
        assert!(!p.contains(&a.encode(b"A").unwrap()));
    }

    #[test]
    #[should_panic(expected = "prefix longer")]
    fn prefix_beyond_len_panics() {
        let s = Spine::build_from_bytes(Alphabet::dna(), b"AC").unwrap();
        let _ = s.prefix(3);
    }
}

// ---------------------------------------------------------------------------
// Generic prefix views: the partitioning property holds for every backend.
// ---------------------------------------------------------------------------

/// A prefix view over *any* SPINE representation ([`crate::ops::SpineOps`]): the §2.7
/// partitioning property is purely structural — every rib/extrib created
/// while appending character `t` points to node `t`, so restricting to
/// destinations ≤ `len` yields exactly the index of the length-`len` prefix.
/// Works over the reference, compact, and disk layouts alike.
pub struct PrefixView<'a, S: crate::ops::SpineOps + ?Sized> {
    inner: &'a S,
    len: NodeId,
}

impl<'a, S: crate::ops::SpineOps + ?Sized> PrefixView<'a, S> {
    /// View `inner` as the index of its length-`len` prefix.
    ///
    /// # Panics
    /// Panics if `len` exceeds the indexed length.
    pub fn new(inner: &'a S, len: usize) -> Self {
        assert!(len <= inner.text_len(), "prefix longer than the indexed text");
        PrefixView { inner, len: len as NodeId }
    }

    /// Walk the valid path for `pattern` within the fragment.
    pub fn locate(&self, pattern: &[Code]) -> Option<NodeId> {
        crate::search::locate(self, pattern)
    }

    /// All occurrence start offsets of `pattern` within the prefix.
    pub fn find_all(&self, pattern: &[Code]) -> Vec<usize> {
        if pattern.is_empty() {
            return Vec::new();
        }
        crate::occurrences::find_all_ends(self, pattern)
            .into_iter()
            .map(|end| end as usize - pattern.len())
            .collect()
    }
}

impl<S: crate::ops::SpineOps + ?Sized> crate::ops::SpineOps for PrefixView<'_, S> {
    fn text_len(&self) -> usize {
        self.len as usize
    }

    fn vertebra_out(&self, node: NodeId) -> Option<Code> {
        (node < self.len).then(|| self.inner.vertebra_out(node)).flatten()
    }

    fn link_of(&self, node: NodeId) -> (NodeId, u32) {
        // Links always point upstream: valid in any prefix containing node.
        self.inner.link_of(node)
    }

    fn rib_of(&self, node: NodeId, c: Code) -> Option<(NodeId, u32)> {
        self.inner.rib_of(node, c).filter(|&(dest, _)| dest <= self.len)
    }

    fn extrib_of(&self, node: NodeId, prt: u32) -> Option<(NodeId, u32)> {
        // Chain destinations are creation times and increase along the
        // chain, so this filter truncates the chain to a proper prefix.
        self.inner.extrib_of(node, prt).filter(|&(dest, _)| dest <= self.len)
    }

    fn ops_counters(&self) -> &strindex::Counters {
        self.inner.ops_counters()
    }
}

impl crate::CompactSpine {
    /// View this compact index as the index of its length-`len` prefix
    /// (see [`PrefixView`]).
    pub fn prefix(&self, len: usize) -> PrefixView<'_, crate::CompactSpine> {
        PrefixView::new(self, len)
    }
}

impl crate::DiskSpine {
    /// View this disk index as the index of its length-`len` prefix
    /// (see [`PrefixView`]).
    pub fn prefix(&self, len: usize) -> PrefixView<'_, crate::DiskSpine> {
        PrefixView::new(self, len)
    }
}

#[cfg(test)]
mod view_tests {
    use super::*;
    use crate::CompactSpine;

    #[test]
    fn compact_prefix_equals_fresh_compact_build() {
        let a = Alphabet::dna();
        let text = a.encode(b"AACCACAACAGGTTACGACGACCA").unwrap();
        let full = CompactSpine::build(a.clone(), &text).unwrap();
        for k in [0usize, 1, 5, 10, 17, 24] {
            let fresh = CompactSpine::build(a.clone(), &text[..k]).unwrap();
            let view = full.prefix(k);
            for len in 1..=4usize {
                for bits in 0..(1u32 << (2 * len)) {
                    let p: Vec<Code> = (0..len).map(|i| ((bits >> (2 * i)) & 3) as Code).collect();
                    assert_eq!(view.find_all(&p), fresh.find_all(&p), "pattern {p:?}, prefix {k}");
                }
            }
        }
    }

    #[test]
    fn disk_prefix_answers_prefix_queries() {
        use pagestore::{Lru, MemDevice};
        let a = Alphabet::dna();
        let text = a.encode(b"AACCACAACA").unwrap();
        let d = crate::DiskSpine::build(
            a.clone(),
            &text,
            Box::new(MemDevice::new()),
            4,
            Box::<Lru>::default(),
        )
        .unwrap();
        let view = d.prefix(5);
        assert_eq!(view.find_all(&a.encode(b"CA").unwrap()), vec![3]);
        assert!(view.locate(&a.encode(b"ACAA").unwrap()).is_none());
    }

    #[test]
    #[should_panic(expected = "prefix longer")]
    fn view_beyond_len_panics() {
        let c = CompactSpine::build_from_bytes(Alphabet::dna(), b"AC").unwrap();
        let _ = c.prefix(3);
    }
}
