//! Approximate (k-mismatch) search over SPINE.
//!
//! The paper lists approximate matching among the suffix-tree
//! functionalities SPINE supports "at a structural level" and as a future
//! avenue; this module implements the Hamming-distance variant: find every
//! occurrence of a pattern with at most `k` substitutions.
//!
//! The algorithm is a depth-first enumeration of valid paths: at each node
//! the traversable edges (the vertebra, plus every rib/extrib chain passing
//! its pathlength-threshold test) are tried, spending one unit of mismatch
//! budget whenever the edge's character differs from the pattern's. Because
//! every valid path ends at the *first occurrence* of its spelled string,
//! each surviving leaf of the DFS identifies one distinct approximate match
//! string; its remaining occurrences come from the usual batched backbone
//! scan.
//!
//! The cost is O(σ^k · |p|) paths in the worst case — the standard bound for
//! trie-backtracking k-mismatch search — fine for the small `k` used in
//! seed-and-extend alignment.

use crate::node::{NodeId, ROOT};
use crate::occurrences::{find_all_ends_batch, Target};
use crate::ops::SpineOps;
use strindex::{Code, FxHashMap};

/// One approximate occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ApproxMatch {
    /// Start offset in the text.
    pub start: usize,
    /// Number of mismatching positions (≤ the search's `k`).
    pub mismatches: u32,
}

/// Enumerate the traversable edges out of `node` for a path of length `pl`:
/// `(symbol, destination)` pairs, obeying PT/extrib-chain rules.
fn edges_out<S: SpineOps + ?Sized>(
    s: &S,
    node: NodeId,
    pl: u32,
    alphabet_codes: usize,
) -> Vec<(Code, NodeId)> {
    let mut out = Vec::new();
    let vert = s.vertebra_out(node);
    if let Some(vc) = vert {
        out.push((vc, node + 1));
    }
    for c in 0..alphabet_codes as Code {
        if Some(c) == vert {
            continue; // construction never duplicates the vertebra symbol
        }
        let Some((dest, pt)) = s.rib_of(node, c) else {
            continue;
        };
        if pl <= pt {
            out.push((c, dest));
            continue;
        }
        // Extrib chain.
        let prt = pt;
        let mut at = dest;
        while let Some((edest, ept)) = s.extrib_of(at, prt) {
            if ept >= pl {
                out.push((c, edest));
                break;
            }
            at = edest;
        }
    }
    out
}

/// Find all occurrences of `pattern` within Hamming distance `k`,
/// sorted by start offset; each start is reported once with its smallest
/// mismatch count.
pub fn find_all_hamming<S: SpineOps + ?Sized>(
    s: &S,
    alphabet_codes: usize,
    pattern: &[Code],
    k: u32,
) -> Vec<ApproxMatch> {
    if pattern.is_empty() {
        return Vec::new();
    }
    // DFS over valid paths, collecting (end node, mismatches) leaves.
    // Distinct leaves spell distinct strings, but prune revisits of the same
    // (depth, node) state with a no-better budget.
    let mut leaves: FxHashMap<NodeId, u32> = FxHashMap::default();
    let mut best: FxHashMap<(usize, NodeId), u32> = FxHashMap::default();
    let mut stack: Vec<(NodeId, usize, u32)> = vec![(ROOT, 0, 0)];
    while let Some((node, depth, miss)) = stack.pop() {
        if depth == pattern.len() {
            let e = leaves.entry(node).or_insert(u32::MAX);
            *e = (*e).min(miss);
            continue;
        }
        match best.entry((depth, node)) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                if *o.get() <= miss {
                    continue;
                }
                o.insert(miss);
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(miss);
            }
        }
        let want = pattern[depth];
        for (c, dest) in edges_out(s, node, depth as u32, alphabet_codes) {
            let m = miss + (c != want) as u32;
            if m <= k {
                stack.push((dest, depth + 1, m));
            }
        }
    }
    // Expand every distinct matched string to all its occurrences in one
    // backbone scan.
    let targets: Vec<Target> =
        leaves.keys().map(|&first_end| Target { first_end, len: pattern.len() as u32 }).collect();
    let occs = find_all_ends_batch(s, &targets);
    let mut out: FxHashMap<usize, u32> = FxHashMap::default();
    for t in &targets {
        let miss = leaves[&t.first_end];
        for &end in &occs[t] {
            let start = end as usize - pattern.len();
            let e = out.entry(start).or_insert(u32::MAX);
            *e = (*e).min(miss);
        }
    }
    let mut v: Vec<ApproxMatch> =
        out.into_iter().map(|(start, mismatches)| ApproxMatch { start, mismatches }).collect();
    v.sort();
    v
}

impl crate::Spine {
    /// All occurrences of `pattern` within Hamming distance `k`.
    pub fn find_all_hamming(&self, pattern: &[Code], k: u32) -> Vec<ApproxMatch> {
        find_all_hamming(self, self.alphabet_ref().code_space(), pattern, k)
    }
}

impl crate::CompactSpine {
    /// All occurrences of `pattern` within Hamming distance `k`.
    pub fn find_all_hamming(&self, pattern: &[Code], k: u32) -> Vec<ApproxMatch> {
        use strindex::StringIndex;
        find_all_hamming(self, self.alphabet().code_space(), pattern, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompactSpine, Spine};
    use strindex::Alphabet;

    /// Brute-force k-mismatch scan.
    fn naive(text: &[Code], pattern: &[Code], k: u32) -> Vec<ApproxMatch> {
        if pattern.is_empty() || pattern.len() > text.len() {
            return Vec::new();
        }
        (0..=text.len() - pattern.len())
            .filter_map(|i| {
                let miss =
                    text[i..i + pattern.len()].iter().zip(pattern).filter(|(a, b)| a != b).count()
                        as u32;
                (miss <= k).then_some(ApproxMatch { start: i, mismatches: miss })
            })
            .collect()
    }

    #[test]
    fn exact_is_k0() {
        let a = Alphabet::dna();
        let text = a.encode(b"AACCACAACA").unwrap();
        let s = Spine::build(a.clone(), &text).unwrap();
        let p = a.encode(b"CA").unwrap();
        let hits = s.find_all_hamming(&p, 0);
        assert_eq!(hits, naive(&text, &p, 0));
        assert_eq!(hits.iter().map(|m| m.start).collect::<Vec<_>>(), vec![3, 5, 8]);
    }

    #[test]
    fn one_mismatch_matches_naive() {
        let a = Alphabet::dna();
        let text = a.encode(b"ACGTACGGTACGTTTACGACGACCAACC").unwrap();
        let s = Spine::build(a.clone(), &text).unwrap();
        for p in [&b"ACGT"[..], b"TTT", b"GACGAC", b"CCCC"] {
            let p = a.encode(p).unwrap();
            for k in 0..=2u32 {
                assert_eq!(s.find_all_hamming(&p, k), naive(&text, &p, k), "{p:?} k={k}");
            }
        }
    }

    #[test]
    fn compact_agrees_with_reference() {
        let a = Alphabet::dna();
        let text = a.encode(b"AACCACAACAGGTTACGACGACCA").unwrap();
        let r = Spine::build(a.clone(), &text).unwrap();
        let c = CompactSpine::build(a.clone(), &text).unwrap();
        let p = a.encode(b"ACGAC").unwrap();
        assert_eq!(r.find_all_hamming(&p, 2), c.find_all_hamming(&p, 2));
    }

    #[test]
    fn pattern_longer_than_text() {
        let a = Alphabet::dna();
        let s = Spine::build_from_bytes(a.clone(), b"AC").unwrap();
        assert!(s.find_all_hamming(&a.encode(b"ACGT").unwrap(), 3).is_empty());
    }

    #[test]
    fn budget_widens_hit_set() {
        let a = Alphabet::dna();
        let text = a.encode(b"ACGTAGGTACCTACGT").unwrap();
        let s = Spine::build(a.clone(), &text).unwrap();
        let p = a.encode(b"ACGT").unwrap();
        let k0 = s.find_all_hamming(&p, 0).len();
        let k1 = s.find_all_hamming(&p, 1).len();
        let k2 = s.find_all_hamming(&p, 2).len();
        assert!(k0 <= k1 && k1 <= k2);
        assert_eq!(naive(&text, &p, 2).len(), k2);
    }
}
