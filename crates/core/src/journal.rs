//! The segment store's durable lifecycle journal: an append-only record of
//! *what the store did*, as opposed to the manifest's record of *what is
//! durable now*.
//!
//! Every state transition — seal, merge, retire, recovery, orphan cleanup —
//! appends one checksummed [`JournalEvent`] to `JOURNAL.log` in the store
//! directory. The journal is strictly secondary to the manifest: an event is
//! appended only *after* the manifest commit it describes has been fsynced
//! into place, so after any crash the journal's maximum epoch is at most the
//! recovered manifest epoch. Recovery replays the journal, truncates a torn
//! tail (the one legal kind of damage — a crash mid-append), and refuses to
//! open if the cross-check fails, because a journal that is *ahead* of the
//! manifest can only mean corruption or manual tampering.
//!
//! ## Encoding
//!
//! A sequence of self-delimiting fixed-layout records, each individually
//! checksummed (FNV-1a over the record bytes before the checksum):
//!
//! ```text
//! "SPJE" | version u16 | kind u8 | epoch u64 | unix_ms u64
//! | docs u64 | aux u64
//! | input count u32  | input segment ids u64...
//! | output count u32 | output segment ids u64...
//! | phase nanos u64 × MergePhase::COUNT
//! | checksum u64
//! ```
//!
//! Two decode disciplines serve two callers:
//!
//! * [`decode_all`] is strict — any torn, corrupt, or trailing byte is
//!   [`Error::Parse`], an unknown version is [`Error::FormatVersion`]. The
//!   fault sweep uses this to prove crashpoints never leave torn records
//!   (the I/O gate model is fail-stop: an append either happened or didn't).
//! * [`replay`] is lenient — it salvages the longest valid record prefix and
//!   reports how many bytes it covers, because a *real* crash mid-append
//!   (outside the gate model) must cost the tail event, not the store.

use crate::manifest::fnv1a;
use crate::observe::MergePhase;
use strindex::{Error, Result};

/// Version stamped into every journal record this build writes.
pub const JOURNAL_VERSION: u16 = 1;

/// Journal file name inside a segment store directory.
pub const JOURNAL_FILE: &str = "JOURNAL.log";

const MAGIC: &[u8; 4] = b"SPJE";

/// Fixed byte overhead of a record around its two id lists.
const FIXED_LEN: usize = 4 + 2 + 1 + 8 * 4 + 4 + 4 + 8 * MergePhase::COUNT + 8;

/// What kind of lifecycle transition a [`JournalEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalKind {
    /// Memtable sealed into a new segment. `outputs` = the new segment id,
    /// `docs` = documents sealed.
    Seal,
    /// Segments compacted. `inputs` = replaced segment ids, `outputs` = the
    /// replacement (empty if everything merged away), `docs` = live
    /// documents carried forward, `aux` = tombstones dropped.
    Merge,
    /// A sealed document tombstoned. `docs` = the retired document id.
    Retire,
    /// Store opened and recovered. `outputs` = live segment ids, `docs` =
    /// live documents, `aux` = orphan files detected.
    Recover,
    /// Orphan files removed. `docs` = files deleted.
    OrphanCleanup,
}

impl JournalKind {
    fn code(self) -> u8 {
        match self {
            JournalKind::Seal => 0,
            JournalKind::Merge => 1,
            JournalKind::Retire => 2,
            JournalKind::Recover => 3,
            JournalKind::OrphanCleanup => 4,
        }
    }

    fn from_code(code: u8) -> Result<Self> {
        Ok(match code {
            0 => JournalKind::Seal,
            1 => JournalKind::Merge,
            2 => JournalKind::Retire,
            3 => JournalKind::Recover,
            4 => JournalKind::OrphanCleanup,
            _ => return Err(Error::Parse("unknown journal event kind".into())),
        })
    }

    /// Stable lowercase name for exports.
    pub fn name(self) -> &'static str {
        match self {
            JournalKind::Seal => "seal",
            JournalKind::Merge => "merge",
            JournalKind::Retire => "retire",
            JournalKind::Recover => "recover",
            JournalKind::OrphanCleanup => "orphan_cleanup",
        }
    }
}

/// One durable lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEvent {
    /// Transition kind (fixes the meaning of the numeric fields).
    pub kind: JournalKind,
    /// Manifest epoch *after* the transition this event describes. For
    /// [`JournalKind::Recover`] (which commits nothing) it is the recovered
    /// epoch.
    pub epoch: u64,
    /// Wall-clock milliseconds since the Unix epoch at append time.
    pub unix_ms: u64,
    /// Kind-dependent document count or id (see [`JournalKind`]).
    pub docs: u64,
    /// Kind-dependent auxiliary count (see [`JournalKind`]).
    pub aux: u64,
    /// Segment ids consumed by the transition.
    pub inputs: Vec<u64>,
    /// Segment ids produced or (for recover) observed live.
    pub outputs: Vec<u64>,
    /// Wall nanoseconds per [`MergePhase`], all zero for untimed kinds.
    pub phase_nanos: [u64; MergePhase::COUNT],
}

impl JournalEvent {
    /// Serialize to the on-disk record layout (checksum included).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FIXED_LEN + 8 * (self.inputs.len() + self.outputs.len()));
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        out.push(self.kind.code());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.unix_ms.to_le_bytes());
        out.extend_from_slice(&self.docs.to_le_bytes());
        out.extend_from_slice(&self.aux.to_le_bytes());
        out.extend_from_slice(&(self.inputs.len() as u32).to_le_bytes());
        for &id in &self.inputs {
            out.extend_from_slice(&id.to_le_bytes());
        }
        out.extend_from_slice(&(self.outputs.len() as u32).to_le_bytes());
        for &id in &self.outputs {
            out.extend_from_slice(&id.to_le_bytes());
        }
        for &n in &self.phase_nanos {
            out.extend_from_slice(&n.to_le_bytes());
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// One-line JSON rendering for the `/journal` monitor route.
    pub fn to_json(&self) -> String {
        let ids = |v: &[u64]| v.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(",");
        let phases = MergePhase::all()
            .iter()
            .map(|p| format!("\"{}\":{}", p.name(), self.phase_nanos[p.index()]))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"kind\":\"{}\",\"epoch\":{},\"unix_ms\":{},\"docs\":{},\"aux\":{},\
             \"inputs\":[{}],\"outputs\":[{}],\"phase_nanos\":{{{}}}}}",
            self.kind.name(),
            self.epoch,
            self.unix_ms,
            self.docs,
            self.aux,
            ids(&self.inputs),
            ids(&self.outputs),
            phases,
        )
    }
}

/// Decode one record starting at `at`; returns the event and the offset one
/// past its checksum. Strict: every failure is an error, never a panic.
fn decode_one(bytes: &[u8], at: usize) -> Result<(JournalEvent, usize)> {
    let err = || Error::Parse("journal record truncated".into());
    let rest = &bytes[at..];
    if rest.len() < 4 + 2 + 1 {
        return Err(err());
    }
    if &rest[..4] != MAGIC {
        return Err(Error::Parse("bad journal record magic".into()));
    }
    let version = u16::from_le_bytes([rest[4], rest[5]]);
    if version != JOURNAL_VERSION {
        return Err(Error::FormatVersion { found: version, expected: JOURNAL_VERSION });
    }
    let kind = JournalKind::from_code(rest[6])?;
    let mut r = at + 7;
    let u64_at = |r: &mut usize| -> Result<u64> {
        let s = bytes.get(*r..*r + 8).ok_or_else(err)?;
        *r += 8;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    };
    let epoch = u64_at(&mut r)?;
    let unix_ms = u64_at(&mut r)?;
    let docs = u64_at(&mut r)?;
    let aux = u64_at(&mut r)?;
    let list = |r: &mut usize| -> Result<Vec<u64>> {
        let s = bytes.get(*r..*r + 4).ok_or_else(err)?;
        *r += 4;
        let n = u32::from_le_bytes(s.try_into().unwrap()) as usize;
        let mut ids = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let s = bytes.get(*r..*r + 8).ok_or_else(err)?;
            *r += 8;
            ids.push(u64::from_le_bytes(s.try_into().unwrap()));
        }
        Ok(ids)
    };
    let inputs = list(&mut r)?;
    let outputs = list(&mut r)?;
    let mut phase_nanos = [0u64; MergePhase::COUNT];
    for n in &mut phase_nanos {
        *n = u64_at(&mut r)?;
    }
    let body = &bytes[at..r];
    let sum_bytes = bytes.get(r..r + 8).ok_or_else(err)?;
    let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    if fnv1a(body) != stored {
        return Err(Error::Parse("journal record checksum mismatch (torn write?)".into()));
    }
    Ok((JournalEvent { kind, epoch, unix_ms, docs, aux, inputs, outputs, phase_nanos }, r + 8))
}

/// Strict full decode: every byte must belong to a valid record. Any torn
/// tail, corruption, or trailing garbage is an error.
pub fn decode_all(bytes: &[u8]) -> Result<Vec<JournalEvent>> {
    let mut events = Vec::new();
    let mut at = 0;
    while at < bytes.len() {
        let (ev, next) = decode_one(bytes, at)?;
        events.push(ev);
        at = next;
    }
    Ok(events)
}

/// Lenient replay for recovery: salvage the longest valid record prefix.
/// Returns the decoded events plus the byte length of the valid prefix —
/// anything past it is a torn tail the caller should truncate away.
pub fn replay(bytes: &[u8]) -> (Vec<JournalEvent>, usize) {
    let mut events = Vec::new();
    let mut at = 0;
    while at < bytes.len() {
        match decode_one(bytes, at) {
            Ok((ev, next)) => {
                events.push(ev);
                at = next;
            }
            Err(_) => break,
        }
    }
    (events, at)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<JournalEvent> {
        vec![
            JournalEvent {
                kind: JournalKind::Seal,
                epoch: 1,
                unix_ms: 1_700_000_000_000,
                docs: 2,
                aux: 0,
                inputs: vec![],
                outputs: vec![0],
                phase_nanos: [0, 1200, 3400, 0],
            },
            JournalEvent {
                kind: JournalKind::Retire,
                epoch: 2,
                unix_ms: 1_700_000_000_100,
                docs: 1,
                aux: 0,
                inputs: vec![],
                outputs: vec![],
                phase_nanos: [0; MergePhase::COUNT],
            },
            JournalEvent {
                kind: JournalKind::Merge,
                epoch: 3,
                unix_ms: 1_700_000_000_250,
                docs: 5,
                aux: 1,
                inputs: vec![0, 1],
                outputs: vec![2],
                phase_nanos: [10, 20, 30, 40],
            },
        ]
    }

    fn encode_log(events: &[JournalEvent]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for ev in events {
            bytes.extend_from_slice(&ev.encode());
        }
        bytes
    }

    #[test]
    fn round_trips() {
        let events = sample();
        let bytes = encode_log(&events);
        assert_eq!(decode_all(&bytes).unwrap(), events);
        assert_eq!(decode_all(&[]).unwrap(), Vec::<JournalEvent>::new());
        let (replayed, valid) = replay(&bytes);
        assert_eq!((replayed, valid), (events, bytes.len()));
    }

    #[test]
    fn every_truncation_is_a_parse_error_not_a_panic() {
        let events = sample();
        let bytes = encode_log(&events);
        let boundaries: Vec<usize> = {
            let mut b = vec![0];
            for ev in &events {
                b.push(b.last().unwrap() + ev.encode().len());
            }
            b
        };
        for cut in 0..bytes.len() {
            let out = decode_all(&bytes[..cut]);
            if boundaries.contains(&cut) {
                // A cut at a record boundary is a shorter-but-valid journal.
                let n = boundaries.iter().position(|&b| b == cut).unwrap();
                assert_eq!(out.unwrap(), events[..n], "cut at {cut}");
            } else {
                let e = out.unwrap_err();
                assert!(matches!(e, Error::Parse(_)), "cut at {cut}: unexpected error {e}");
                // Lenient replay salvages exactly the whole records before
                // the cut and reports the boundary as the valid prefix.
                let n = boundaries.iter().take_while(|&&b| b <= cut).count() - 1;
                let (salvaged, valid) = replay(&bytes[..cut]);
                assert_eq!((salvaged, valid), (events[..n].to_vec(), boundaries[n]));
            }
        }
    }

    #[test]
    fn corruption_is_detected() {
        let events = sample();
        let bytes = encode_log(&events);
        // Flip one bit inside the second record's body.
        let first_len = events[0].encode().len();
        let mut corrupt = bytes.clone();
        corrupt[first_len + 10] ^= 0x40;
        assert!(matches!(decode_all(&corrupt), Err(Error::Parse(_))));
        let (salvaged, valid) = replay(&corrupt);
        assert_eq!((salvaged.len(), valid), (1, first_len));
        // Bad magic on the first record: nothing salvageable.
        let mut corrupt = bytes.clone();
        corrupt[0] = b'X';
        assert!(matches!(decode_all(&corrupt), Err(Error::Parse(_))));
        assert_eq!(replay(&corrupt), (vec![], 0));
        // Unknown kind code.
        let mut corrupt = bytes.clone();
        corrupt[6] = 200;
        assert!(matches!(decode_all(&corrupt), Err(Error::Parse(_))));
        // Future version: distinct, actionable error (strict path only).
        let mut corrupt = bytes;
        corrupt[4] = 99;
        assert!(matches!(
            decode_all(&corrupt),
            Err(Error::FormatVersion { found: 99, expected: JOURNAL_VERSION })
        ));
    }

    #[test]
    fn json_rendering_is_stable() {
        let ev = &sample()[2];
        assert_eq!(
            ev.to_json(),
            "{\"kind\":\"merge\",\"epoch\":3,\"unix_ms\":1700000000250,\"docs\":5,\
             \"aux\":1,\"inputs\":[0,1],\"outputs\":[2],\
             \"phase_nanos\":{\"collect\":10,\"build\":20,\"commit\":30,\"cleanup\":40}}"
        );
    }
}
