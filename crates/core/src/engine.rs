//! Concurrent batched query engine.
//!
//! The SPINE structures are immutable after construction and use only
//! relaxed atomic counters for instrumentation, so one index can serve any
//! number of concurrent readers. This module packages that property into a
//! server-shaped front end:
//!
//! * a **worker pool** of OS threads sharing one [`Arc`]-held index;
//! * an **admission queue** that coalesces submitted patterns — each worker
//!   drains up to [`EngineConfig::batch_max`] requests per wakeup and
//!   resolves them through a *single* backbone scan
//!   ([`find_all_ends_batch`]), exactly the batching opportunity §4 of the
//!   paper identifies for multi-pattern workloads;
//! * a **metrics surface** ([`MetricsSnapshot`]) aggregating the index's
//!   [`strindex::Counters`] with per-worker batch statistics and the
//!   observed queue depth.
//!
//! Any [`SpineOps`] engine works: the reference [`crate::Spine`], the §5
//! [`crate::CompactSpine`], or a [`GeneralizedSpine`] over many documents.
//! For corpora too large for one backbone, [`ShardedEngine`] partitions
//! documents across several generalized indexes, broadcasts every pattern,
//! and merges the per-shard answers into global [`DocMatch`]es.
//!
//! ```
//! use spine::engine::{EngineConfig, QueryEngine};
//! use spine::Spine;
//! use std::sync::Arc;
//! use strindex::Alphabet;
//!
//! let alphabet = Alphabet::dna();
//! let index = Arc::new(Spine::build_from_bytes(alphabet.clone(), b"AACCACAACA").unwrap());
//! let engine = QueryEngine::new(index, EngineConfig { workers: 2, ..Default::default() });
//! engine.submit(alphabet.encode(b"CA").unwrap());
//! engine.submit(alphabet.encode(b"AC").unwrap());
//! let results = engine.drain();
//! assert_eq!(results[0].starts(), vec![3, 5, 8]); // CA
//! assert_eq!(results[1].starts(), vec![1, 4, 7]); // AC
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::generalized::{DocMatch, GeneralizedSpine};
use crate::node::NodeId;
use crate::occurrences::{find_all_ends_batch, Target};
use crate::ops::SpineOps;
use crate::search::locate;
use strindex::{Alphabet, Code, CountersSnapshot, Result};

/// Tuning knobs for a [`QueryEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads in the pool (clamped to ≥ 1).
    pub workers: usize,
    /// Most requests one worker coalesces into a single backbone scan
    /// (clamped to ≥ 1).
    pub batch_max: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        EngineConfig { workers, batch_max: 64 }
    }
}

/// Monotonic id assigned by [`QueryEngine::submit`]; results carry it so
/// callers can correlate answers with submissions.
pub type QueryId = u64;

/// The answer to one submitted pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Id returned by the corresponding `submit`.
    pub id: QueryId,
    /// The pattern, handed back so `drain` callers need no side table.
    pub pattern: Vec<Code>,
    /// End positions (1-based) of every occurrence, ascending — the same
    /// values serial [`crate::occurrences::find_all_ends`] yields.
    pub ends: Vec<NodeId>,
}

impl QueryResult {
    /// Occurrence start offsets (0-based), ascending.
    pub fn starts(&self) -> Vec<usize> {
        self.ends.iter().map(|&e| e as usize - self.pattern.len()).collect()
    }
}

/// Batch statistics for one worker thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerMetrics {
    /// Backbone scans this worker performed (= coalesced batches).
    pub batches: u64,
    /// Individual queries answered.
    pub queries: u64,
    /// Largest batch it coalesced.
    pub max_batch: u64,
}

/// Point-in-time view of engine activity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Index work counters (nodes checked, links followed, …), summed over
    /// every structure the engine queries (one for a [`QueryEngine`], one
    /// per shard for a [`ShardedEngine`]).
    pub index: CountersSnapshot,
    /// Per-worker batch statistics, one entry per pool thread.
    pub workers: Vec<WorkerMetrics>,
    /// Requests admitted over the engine's lifetime.
    pub submitted: u64,
    /// Requests fully answered.
    pub completed: u64,
    /// Deepest the admission queue has been.
    pub peak_queue_depth: u64,
}

impl MetricsSnapshot {
    /// Total coalesced batches across workers.
    pub fn batches(&self) -> u64 {
        self.workers.iter().map(|w| w.batches).sum()
    }

    /// Mean queries per backbone scan — the coalescing factor. 0 when idle.
    pub fn mean_batch(&self) -> f64 {
        let b = self.batches();
        if b == 0 {
            0.0
        } else {
            self.completed as f64 / b as f64
        }
    }
}

struct WorkerStats {
    batches: AtomicU64,
    queries: AtomicU64,
    max_batch: AtomicU64,
}

impl WorkerStats {
    fn new() -> Self {
        WorkerStats {
            batches: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
        }
    }

    fn record(&self, batch: usize) {
        self.batches.fetch_add(1, Relaxed);
        self.queries.fetch_add(batch as u64, Relaxed);
        self.max_batch.fetch_max(batch as u64, Relaxed);
    }

    fn read(&self) -> WorkerMetrics {
        WorkerMetrics {
            batches: self.batches.load(Relaxed),
            queries: self.queries.load(Relaxed),
            max_batch: self.max_batch.load(Relaxed),
        }
    }
}

struct Request {
    id: QueryId,
    pattern: Vec<Code>,
}

/// Queue + completion state behind one mutex; the two condvars separate the
/// "work arrived" (workers) and "work finished" (drainers) wakeups.
struct State {
    pending: VecDeque<Request>,
    done: Vec<QueryResult>,
    in_flight: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    all_done: Condvar,
    submitted: AtomicU64,
    completed: AtomicU64,
    peak_queue_depth: AtomicUsize,
    worker_stats: Vec<WorkerStats>,
}

/// A fixed pool of worker threads answering all-occurrence queries against
/// one shared, immutable SPINE index. See the [module docs](self).
///
/// Dropping the engine shuts the pool down; un-drained results are
/// discarded.
pub struct QueryEngine<S: SpineOps + Send + Sync + 'static> {
    index: Arc<S>,
    shared: Arc<Shared>,
    next_id: AtomicU64,
    pool: Vec<JoinHandle<()>>,
}

impl<S: SpineOps + Send + Sync + 'static> QueryEngine<S> {
    /// Spin up a worker pool over `index`.
    pub fn new(index: Arc<S>, config: EngineConfig) -> Self {
        let workers = config.workers.max(1);
        let batch_max = config.batch_max.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                pending: VecDeque::new(),
                done: Vec::new(),
                in_flight: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            all_done: Condvar::new(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            peak_queue_depth: AtomicUsize::new(0),
            worker_stats: (0..workers).map(|_| WorkerStats::new()).collect(),
        });
        let pool = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let index = Arc::clone(&index);
                std::thread::Builder::new()
                    .name(format!("spine-worker-{w}"))
                    .spawn(move || worker_loop(&*index, &shared, w, batch_max))
                    .expect("spawn query worker")
            })
            .collect();
        QueryEngine { index, shared, next_id: AtomicU64::new(0), pool }
    }

    /// The shared index this engine answers from.
    pub fn index(&self) -> &Arc<S> {
        &self.index
    }

    /// Enqueue one pattern; returns its id. Workers pick it up immediately.
    pub fn submit(&self, pattern: Vec<Code>) -> QueryId {
        let id = self.next_id.fetch_add(1, Relaxed);
        self.shared.submitted.fetch_add(1, Relaxed);
        let mut st = self.shared.state.lock().unwrap();
        st.pending.push_back(Request { id, pattern });
        self.shared.peak_queue_depth.fetch_max(st.pending.len(), Relaxed);
        drop(st);
        self.shared.work_ready.notify_one();
        id
    }

    /// Enqueue many patterns at once (one lock acquisition); returns their
    /// ids in order. Large batches wake the whole pool.
    pub fn submit_batch<I>(&self, patterns: I) -> Vec<QueryId>
    where
        I: IntoIterator<Item = Vec<Code>>,
    {
        let mut ids = Vec::new();
        let mut st = self.shared.state.lock().unwrap();
        for pattern in patterns {
            let id = self.next_id.fetch_add(1, Relaxed);
            self.shared.submitted.fetch_add(1, Relaxed);
            st.pending.push_back(Request { id, pattern });
            ids.push(id);
        }
        self.shared.peak_queue_depth.fetch_max(st.pending.len(), Relaxed);
        drop(st);
        if ids.len() > 1 {
            self.shared.work_ready.notify_all();
        } else {
            self.shared.work_ready.notify_one();
        }
        ids
    }

    /// Block until every submitted query is answered, then return all
    /// accumulated results sorted by [`QueryId`].
    pub fn drain(&self) -> Vec<QueryResult> {
        let mut st = self.shared.state.lock().unwrap();
        while !(st.pending.is_empty() && st.in_flight == 0) {
            st = self.shared.all_done.wait(st).unwrap();
        }
        let mut out = std::mem::take(&mut st.done);
        drop(st);
        out.sort_by_key(|r| r.id);
        out
    }

    /// Current activity counters. Cheap; safe to call while queries run.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            index: self.index.ops_counters().snapshot(),
            workers: self.shared.worker_stats.iter().map(WorkerStats::read).collect(),
            submitted: self.shared.submitted.load(Relaxed),
            completed: self.shared.completed.load(Relaxed),
            peak_queue_depth: self.shared.peak_queue_depth.load(Relaxed) as u64,
        }
    }
}

impl<S: SpineOps + Send + Sync + 'static> Drop for QueryEngine<S> {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.work_ready.notify_all();
        for h in self.pool.drain(..) {
            let _ = h.join();
        }
    }
}

/// One worker: wait for work, coalesce up to `batch_max` requests, resolve
/// them in a single backbone scan, publish results, repeat until shutdown.
fn worker_loop<S: SpineOps + ?Sized>(index: &S, shared: &Shared, who: usize, batch_max: usize) {
    loop {
        let batch: Vec<Request> = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if !st.pending.is_empty() {
                    break;
                }
                if st.shutdown {
                    return;
                }
                st = shared.work_ready.wait(st).unwrap();
            }
            let take = st.pending.len().min(batch_max);
            let batch: Vec<Request> = st.pending.drain(..take).collect();
            st.in_flight += batch.len();
            batch
        };
        shared.worker_stats[who].record(batch.len());

        let results = answer_batch(index, &batch);

        let mut st = shared.state.lock().unwrap();
        st.in_flight -= batch.len();
        shared.completed.fetch_add(batch.len() as u64, Relaxed);
        st.done.extend(results);
        if st.pending.is_empty() && st.in_flight == 0 {
            shared.all_done.notify_all();
        }
    }
}

/// Resolve a coalesced batch: locate each pattern's valid path, then answer
/// every located pattern with one shared backbone scan.
fn answer_batch<S: SpineOps + ?Sized>(index: &S, batch: &[Request]) -> Vec<QueryResult> {
    // The locate phase is per-pattern (it walks the valid path); patterns
    // that don't occur produce no Target and answer with no occurrences.
    let located: Vec<Option<Target>> = batch
        .iter()
        .map(|r| {
            if r.pattern.is_empty() {
                return None; // answered positionally below
            }
            locate(index, &r.pattern)
                .map(|first| Target { first_end: first, len: r.pattern.len() as u32 })
        })
        .collect();
    let targets: Vec<Target> = located.iter().flatten().copied().collect();
    let scanned = find_all_ends_batch(index, &targets);
    batch
        .iter()
        .zip(&located)
        .map(|(r, t)| {
            let ends = match t {
                // The empty pattern ends at every node (serial
                // `find_all_ends` agrees: its scan accepts all of 0..=n).
                None if r.pattern.is_empty() => (0..=index.text_len() as NodeId).collect(),
                None => Vec::new(),
                // Duplicate targets share one entry in the scan result, so
                // clone rather than remove. (remove would starve the twin.)
                Some(t) => scanned.get(t).cloned().unwrap_or_default(),
            };
            QueryResult { id: r.id, pattern: r.pattern.clone(), ends }
        })
        .collect()
}

/// An occurrence merged across shards, tagged with the global document id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedResult {
    /// Id from [`ShardedEngine::submit`].
    pub id: QueryId,
    /// The pattern.
    pub pattern: Vec<Code>,
    /// Occurrences across all shards, ordered by (document, offset) with
    /// documents numbered in global insertion order.
    pub matches: Vec<DocMatch>,
}

/// Document-sharded deployment: `n` generalized SPINE indexes, each fronted
/// by its own [`QueryEngine`], with patterns broadcast to every shard and
/// the per-shard answers merged back into global document coordinates.
///
/// Sharding bounds per-index backbone length (shorter scans, independent
/// construction) at the cost of running every pattern `n` times; it is the
/// deployment §6 of the paper gestures at for corpora beyond one index.
pub struct ShardedEngine {
    engines: Vec<QueryEngine<GeneralizedSpine>>,
    /// `global_doc[s][d]` = global id of shard `s`'s local document `d`.
    global_doc: Vec<Vec<usize>>,
    submitted: AtomicU64,
}

impl ShardedEngine {
    /// Partition `docs` round-robin across `shards` generalized indexes and
    /// start a worker pool (of `config.workers` threads *per shard*) over
    /// each.
    pub fn build(
        alphabet: Alphabet,
        docs: &[Vec<Code>],
        shards: usize,
        config: EngineConfig,
    ) -> Result<Self> {
        let shards = shards.max(1).min(docs.len().max(1));
        let mut indexes: Vec<GeneralizedSpine> =
            (0..shards).map(|_| GeneralizedSpine::new(alphabet.clone())).collect();
        let mut global_doc: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (g, doc) in docs.iter().enumerate() {
            let s = g % shards;
            indexes[s].add_document(doc)?;
            global_doc[s].push(g);
        }
        let engines =
            indexes.into_iter().map(|ix| QueryEngine::new(Arc::new(ix), config)).collect();
        Ok(ShardedEngine { engines, global_doc, submitted: AtomicU64::new(0) })
    }

    /// Number of shards actually built.
    pub fn shard_count(&self) -> usize {
        self.engines.len()
    }

    /// Broadcast one pattern to every shard.
    pub fn submit(&self, pattern: Vec<Code>) -> QueryId {
        for e in &self.engines {
            e.submit(pattern.clone());
        }
        self.submitted.fetch_add(1, Relaxed)
    }

    /// Wait for all shards, merge each pattern's per-shard occurrences into
    /// global document coordinates, and return results in submission order.
    ///
    /// Every shard receives every pattern in the same order, so the shard-
    /// local result streams (sorted by shard-local id) align index-for-index
    /// with the global submission order.
    pub fn drain(&self) -> Vec<ShardedResult> {
        let per_shard: Vec<Vec<QueryResult>> = self.engines.iter().map(|e| e.drain()).collect();
        let n = per_shard.first().map(|v| v.len()).unwrap_or(0);
        let mut out = Vec::with_capacity(n);
        for q in 0..n {
            let pattern = per_shard[0][q].pattern.clone();
            let plen = pattern.len();
            let mut matches: Vec<DocMatch> = Vec::new();
            for (s, results) in per_shard.iter().enumerate() {
                let shard_index = self.engines[s].index();
                for &end in &results[q].ends {
                    let local = shard_index.localize(end as usize - plen);
                    matches.push(DocMatch {
                        doc: self.global_doc[s][local.doc],
                        offset: local.offset,
                    });
                }
            }
            matches.sort_unstable();
            out.push(ShardedResult { id: q as QueryId, pattern, matches });
        }
        out
    }

    /// Aggregated metrics: index counters summed across shards, worker lists
    /// concatenated, queue depth taken as the per-shard maximum.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut agg = MetricsSnapshot::default();
        for e in &self.engines {
            let m = e.metrics();
            agg.index += m.index;
            agg.workers.extend(m.workers);
            agg.submitted += m.submitted;
            agg.completed += m.completed;
            agg.peak_queue_depth = agg.peak_queue_depth.max(m.peak_queue_depth);
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Spine;
    use crate::compact::CompactSpine;
    use crate::occurrences::find_all_ends;
    use strindex::Alphabet;

    fn paper_engine(workers: usize) -> (Alphabet, QueryEngine<Spine>) {
        let a = Alphabet::dna();
        let s = Spine::build_from_bytes(a.clone(), b"AACCACAACA").unwrap();
        (a.clone(), QueryEngine::new(Arc::new(s), EngineConfig { workers, batch_max: 4 }))
    }

    #[test]
    fn answers_match_serial_scan() {
        let (a, engine) = paper_engine(3);
        let pats = [&b"CA"[..], b"AC", b"A", b"AACCACAACA", b"GG", b""];
        let ids: Vec<QueryId> = pats.iter().map(|p| engine.submit(a.encode(p).unwrap())).collect();
        let results = engine.drain();
        assert_eq!(results.len(), pats.len());
        for (i, (r, p)) in results.iter().zip(&pats).enumerate() {
            assert_eq!(r.id, ids[i]);
            let serial = find_all_ends(engine.index().as_ref(), &a.encode(p).unwrap());
            assert_eq!(r.ends, serial, "pattern {p:?}");
        }
    }

    #[test]
    fn starts_are_zero_based_offsets() {
        let (a, engine) = paper_engine(1);
        engine.submit(a.encode(b"CA").unwrap());
        let r = engine.drain();
        assert_eq!(r[0].ends, vec![5, 7, 10]);
        assert_eq!(r[0].starts(), vec![3, 5, 8]);
    }

    #[test]
    fn duplicate_patterns_each_get_answers() {
        let (a, engine) = paper_engine(1); // one worker ⇒ one coalesced batch
        let ca = a.encode(b"CA").unwrap();
        engine.submit_batch(vec![ca.clone(), ca.clone(), ca.clone(), ca]);
        let results = engine.drain();
        assert_eq!(results.len(), 4);
        for r in results {
            assert_eq!(r.ends, vec![5, 7, 10]);
        }
    }

    #[test]
    fn drain_on_idle_engine_is_empty_and_repeatable() {
        let (a, engine) = paper_engine(2);
        assert!(engine.drain().is_empty());
        engine.submit(a.encode(b"A").unwrap());
        assert_eq!(engine.drain().len(), 1);
        assert!(engine.drain().is_empty()); // results were consumed
    }

    #[test]
    fn metrics_count_batches_and_queries() {
        let (a, engine) = paper_engine(1);
        engine.submit_batch((0..10).map(|_| a.encode(b"AC").unwrap()));
        engine.drain();
        let m = engine.metrics();
        assert_eq!(m.submitted, 10);
        assert_eq!(m.completed, 10);
        assert_eq!(m.workers.iter().map(|w| w.queries).sum::<u64>(), 10);
        // batch_max = 4 ⇒ at least ⌈10/4⌉ = 3 scans, and coalescing means
        // strictly fewer scans than queries.
        let batches = m.batches();
        assert!((3..=10).contains(&batches), "batches = {batches}");
        assert!(m.index.nodes_checked > 0);
        assert!(m.peak_queue_depth >= 1);
        assert!(m.mean_batch() >= 1.0);
    }

    #[test]
    fn works_over_the_compact_layout() {
        let a = Alphabet::dna();
        let c = CompactSpine::build_from_bytes(a.clone(), b"AACCACAACA").unwrap();
        let engine = QueryEngine::new(Arc::new(c), EngineConfig { workers: 2, batch_max: 8 });
        engine.submit(a.encode(b"AAC").unwrap());
        let r = engine.drain();
        assert_eq!(r[0].starts(), vec![0, 6]);
    }

    #[test]
    fn empty_text_engine_answers() {
        let a = Alphabet::dna();
        let s = Spine::build(a.clone(), &[]).unwrap();
        let engine = QueryEngine::new(Arc::new(s), EngineConfig::default());
        engine.submit(a.encode(b"A").unwrap());
        engine.submit(Vec::new());
        let r = engine.drain();
        assert!(r[0].ends.is_empty());
        assert_eq!(r[1].ends, vec![0]); // empty pattern ends at the root
    }

    #[test]
    fn sharded_engine_matches_unsharded_generalized() {
        let a = Alphabet::dna();
        let docs: Vec<Vec<Code>> = [&b"ACGTACGT"[..], b"TTACG", b"GGGG", b"ACACAC", b"T"]
            .iter()
            .map(|d| a.encode(d).unwrap())
            .collect();

        let mut reference = GeneralizedSpine::new(a.clone());
        for d in &docs {
            reference.add_document(d).unwrap();
        }

        let sharded =
            ShardedEngine::build(a.clone(), &docs, 3, EngineConfig { workers: 2, batch_max: 4 })
                .unwrap();
        assert_eq!(sharded.shard_count(), 3);

        let pats = [&b"ACG"[..], b"T", b"GG", b"CACA", b"TTT"];
        for p in pats {
            sharded.submit(a.encode(p).unwrap());
        }
        let results = sharded.drain();
        assert_eq!(results.len(), pats.len());
        for (r, p) in results.iter().zip(&pats) {
            assert_eq!(r.matches, reference.find_all(&a.encode(p).unwrap()), "pattern {p:?}");
        }

        let m = sharded.metrics();
        assert_eq!(m.completed, (pats.len() * sharded.shard_count()) as u64);
        assert_eq!(m.workers.len(), 2 * sharded.shard_count());
    }

    #[test]
    fn sharded_engine_single_shard_degenerate() {
        let a = Alphabet::dna();
        let docs = vec![a.encode(b"ACGT").unwrap()];
        let sharded = ShardedEngine::build(a.clone(), &docs, 8, EngineConfig::default()).unwrap();
        assert_eq!(sharded.shard_count(), 1); // clamped to doc count
        sharded.submit(a.encode(b"CG").unwrap());
        let r = sharded.drain();
        assert_eq!(r[0].matches, vec![DocMatch { doc: 0, offset: 1 }]);
    }
}
