//! Concurrent batched query engine with fault-tolerant serving.
//!
//! The SPINE structures are immutable after construction and use only
//! relaxed atomic counters for instrumentation, so one index can serve any
//! number of concurrent readers. This module packages that property into a
//! server-shaped front end:
//!
//! * a **worker pool** of OS threads sharing one [`Arc`]-held index;
//! * a **bounded admission queue** that coalesces submitted patterns — each
//!   worker drains up to [`EngineConfig::batch_max`] requests per wakeup and
//!   resolves them through a *single* backbone scan
//!   ([`crate::occurrences::find_all_ends_batch`]), exactly the batching
//!   opportunity §4 of the paper identifies for multi-pattern workloads.
//!   When the queue is at [`EngineConfig::queue_capacity`], the
//!   [`ShedPolicy`] decides whether a new submission blocks for space or is
//!   shed with [`SubmitError::Overloaded`];
//! * **per-request deadlines** ([`QueryEngine::submit_with_deadline`]):
//!   a request whose deadline has passed by the time a worker would batch it
//!   completes as [`QueryOutcome::TimedOut`] without occupying a batch slot;
//! * **worker panic isolation**: a panic while answering a batch fails only
//!   that batch's requests ([`QueryOutcome::Failed`]); the worker is
//!   respawned (counted in [`MetricsSnapshot::worker_respawns`]) and
//!   `drain` never hangs;
//! * a **metrics surface** ([`MetricsSnapshot`]) aggregating the index's
//!   [`strindex::Counters`] with per-worker batch statistics, the observed
//!   queue depth, and the fate of every request. The request ledger lives
//!   under the state lock and is snapshotted atomically, so
//!   `completed + shed + timed_out + failed + pending + in_flight ==
//!   submitted` holds on *every* snapshot, not just at idle;
//! * an optional **telemetry hookup** ([`QueryEngine::with_telemetry`]):
//!   given a shared [`MetricsRegistry`], the engine records per-stage
//!   latency histograms ([`Stage::AdmissionWait`], [`Stage::BatchFormation`],
//!   [`Stage::IndexScan`], [`Stage::ResultMerge`]), end-to-end query
//!   latencies, batch sizes, and per-query/per-batch tracing spans. Engines
//!   built with [`QueryEngine::new`] record nothing and pay nothing.
//!
//! Any [`ServeIndex`] works. Every [`FallibleSpineOps`] engine is one for
//! free (a blanket impl coalesces the batch into a single backbone scan):
//! the reference [`crate::Spine`], the §5 [`crate::CompactSpine`], a
//! [`GeneralizedSpine`] over many documents, or a page-resident
//! [`crate::DiskSpine`] — whose storage faults degrade the affected
//! requests to [`QueryOutcome::Failed`] instead of tearing down the server.
//! Composite indexes like the segmented LSM store
//! ([`crate::SegmentedSpine`]) implement [`ServeIndex`] directly and answer
//! with document-level matches ([`QueryOutcome::DoneDocs`]). For corpora
//! too large for one backbone, [`ShardedEngine`] partitions documents
//! across several generalized indexes, broadcasts every pattern, and merges
//! the per-shard answers into global [`DocMatch`]es.
//!
//! ```
//! use spine::engine::{EngineConfig, QueryEngine};
//! use spine::Spine;
//! use std::sync::Arc;
//! use strindex::Alphabet;
//!
//! let alphabet = Alphabet::dna();
//! let index = Arc::new(Spine::build_from_bytes(alphabet.clone(), b"AACCACAACA").unwrap());
//! let engine = QueryEngine::new(index, EngineConfig { workers: 2, ..Default::default() });
//! engine.submit(alphabet.encode(b"CA").unwrap()).unwrap();
//! engine.submit(alphabet.encode(b"AC").unwrap()).unwrap();
//! let results = engine.drain();
//! assert_eq!(results[0].expect_starts(), vec![3, 5, 8]); // CA
//! assert_eq!(results[1].expect_starts(), vec![1, 4, 7]); // AC
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::generalized::{DocMatch, GeneralizedSpine};
use crate::node::NodeId;
use crate::occurrences::{try_find_all_ends_batch, Target};
use crate::ops::FallibleSpineOps;
use crate::search::try_locate;
use strindex::telemetry::{Histogram, MetricsRegistry, SlidingWindow, SloTracker, Stage};
use strindex::{Alphabet, Code, CountersSnapshot, Result};

/// What happens to a submission that finds the admission queue full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Block the submitting thread until a worker frees queue space.
    /// Backpressure without loss; the default.
    #[default]
    Block,
    /// Shed the incoming request: `submit` returns
    /// [`SubmitError::Overloaded`] immediately and the request is counted in
    /// [`MetricsSnapshot::shed`]. Bounded latency under overload.
    RejectNewest,
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue was at capacity and the engine's
    /// [`ShedPolicy::RejectNewest`] policy shed this request.
    Overloaded,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded => write!(f, "admission queue full; request shed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Tuning knobs for a [`QueryEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads in the pool (clamped to ≥ 1).
    pub workers: usize,
    /// Most requests one worker coalesces into a single backbone scan
    /// (clamped to ≥ 1).
    pub batch_max: usize,
    /// Most requests the admission queue holds before the [`ShedPolicy`]
    /// applies (clamped to ≥ 1).
    pub queue_capacity: usize,
    /// What to do with submissions that find the queue full.
    pub shed: ShedPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        EngineConfig { workers, batch_max: 64, queue_capacity: 4096, shed: ShedPolicy::Block }
    }
}

/// Monotonic id assigned by [`QueryEngine::submit`]; results carry it so
/// callers can correlate answers with submissions.
pub type QueryId = u64;

/// How one submitted pattern ended up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Answered: end positions (1-based) of every occurrence, ascending —
    /// the same values serial [`crate::occurrences::find_all_ends`] yields.
    Done(Vec<NodeId>),
    /// Answered by a document-collection index: every occurrence as a
    /// `(document, offset)` pair, ordered by (doc, offset). Produced by
    /// [`ServeIndex`] implementations whose position space is per-document
    /// (the segmented store) rather than one concatenation.
    DoneDocs(Vec<DocMatch>),
    /// The request's deadline passed before a worker batched it; no index
    /// work was spent on it.
    TimedOut,
    /// The request could not be answered: a storage fault surfaced during
    /// the traversal, or the worker panicked mid-batch. The message
    /// explains which.
    Failed(String),
}

impl QueryOutcome {
    /// Did the request produce an answer (either position flavor)?
    /// Timeouts and failures count against availability.
    pub fn is_answered(&self) -> bool {
        matches!(self, QueryOutcome::Done(_) | QueryOutcome::DoneDocs(_))
    }
}

/// The answer to one submitted pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Id returned by the corresponding `submit`.
    pub id: QueryId,
    /// The pattern, handed back so `drain` callers need no side table.
    pub pattern: Vec<Code>,
    /// How the request ended up.
    pub outcome: QueryOutcome,
}

impl QueryResult {
    /// Occurrence end positions if the query completed, `None` if it timed
    /// out or failed.
    pub fn ends(&self) -> Option<&[NodeId]> {
        match &self.outcome {
            QueryOutcome::Done(ends) => Some(ends),
            _ => None,
        }
    }

    /// Occurrence end positions; panics if the query did not complete.
    pub fn expect_ends(&self) -> &[NodeId] {
        match &self.outcome {
            QueryOutcome::Done(ends) => ends,
            other => panic!("query {} did not complete: {other:?}", self.id),
        }
    }

    /// Occurrence start offsets (0-based), ascending; panics if the query
    /// did not complete.
    pub fn expect_starts(&self) -> Vec<usize> {
        self.expect_ends().iter().map(|&e| e as usize - self.pattern.len()).collect()
    }

    /// Document-level matches if the query completed against a
    /// document-collection index, `None` otherwise.
    pub fn doc_matches(&self) -> Option<&[DocMatch]> {
        match &self.outcome {
            QueryOutcome::DoneDocs(m) => Some(m),
            _ => None,
        }
    }

    /// Document-level matches; panics if the query did not complete with
    /// [`QueryOutcome::DoneDocs`].
    pub fn expect_doc_matches(&self) -> &[DocMatch] {
        match &self.outcome {
            QueryOutcome::DoneDocs(m) => m,
            other => panic!("query {} has no document matches: {other:?}", self.id),
        }
    }
}

/// Batch statistics for one worker thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerMetrics {
    /// Backbone scans this worker performed (= coalesced batches).
    pub batches: u64,
    /// Individual queries answered.
    pub queries: u64,
    /// Largest batch it coalesced.
    pub max_batch: u64,
}

/// Point-in-time view of engine activity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Index work counters (nodes checked, links followed, …), summed over
    /// every structure the engine queries (one for a [`QueryEngine`], one
    /// per shard for a [`ShardedEngine`]).
    pub index: CountersSnapshot,
    /// Per-worker batch statistics, one entry per pool thread.
    pub workers: Vec<WorkerMetrics>,
    /// Requests presented to the engine over its lifetime (admitted or
    /// shed).
    pub submitted: u64,
    /// Requests fully answered ([`QueryOutcome::Done`]).
    pub completed: u64,
    /// Requests shed at admission by [`ShedPolicy::RejectNewest`].
    pub shed: u64,
    /// Requests that expired before a worker batched them
    /// ([`QueryOutcome::TimedOut`]).
    pub timed_out: u64,
    /// Requests that ended as [`QueryOutcome::Failed`] (storage fault or
    /// worker panic).
    pub failed: u64,
    /// Requests sitting in the admission queue at snapshot time.
    pub pending: u64,
    /// Requests inside worker batches at snapshot time.
    pub in_flight: u64,
    /// Worker threads respawned after a panic.
    pub worker_respawns: u64,
    /// Deepest the admission queue has been.
    pub peak_queue_depth: u64,
}

impl MetricsSnapshot {
    /// Total coalesced batches across workers.
    pub fn batches(&self) -> u64 {
        self.workers.iter().map(|w| w.batches).sum()
    }

    /// Mean queries per backbone scan — the coalescing factor. 0 when idle.
    pub fn mean_batch(&self) -> f64 {
        let b = self.batches();
        if b == 0 {
            0.0
        } else {
            self.completed as f64 / b as f64
        }
    }

    /// Requests whose fate is recorded. Equals [`submitted`](Self::submitted)
    /// whenever the engine is idle — the accounting invariant the
    /// fault-tolerance tests assert.
    pub fn accounted(&self) -> u64 {
        self.completed + self.shed + self.timed_out + self.failed
    }

    /// The full-strength ledger invariant: every submitted request is either
    /// finalized, waiting in the queue, or inside a worker batch. Because
    /// the ledger is snapshotted under the engine's state lock, this holds
    /// on every snapshot — including ones taken mid-flight.
    pub fn is_consistent(&self) -> bool {
        self.accounted() + self.pending + self.in_flight == self.submitted
    }
}

struct WorkerStats {
    batches: AtomicU64,
    queries: AtomicU64,
    max_batch: AtomicU64,
}

impl WorkerStats {
    fn new() -> Self {
        WorkerStats {
            batches: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
        }
    }

    fn record(&self, batch: usize) {
        self.batches.fetch_add(1, Relaxed);
        self.queries.fetch_add(batch as u64, Relaxed);
        self.max_batch.fetch_max(batch as u64, Relaxed);
    }

    fn read(&self) -> WorkerMetrics {
        WorkerMetrics {
            batches: self.batches.load(Relaxed),
            queries: self.queries.load(Relaxed),
            max_batch: self.max_batch.load(Relaxed),
        }
    }
}

/// What a [`QueryEngine`] needs from an index: answer a coalesced batch of
/// patterns, one outcome per pattern, in order.
///
/// Every [`FallibleSpineOps`] engine gets this for free via a blanket impl
/// that resolves the whole batch with one shared backbone scan
/// ([`crate::occurrences::try_find_all_ends_batch`]) and answers in
/// concatenation coordinates ([`QueryOutcome::Done`]). Composite stores
/// (the segmented LSM index) implement it directly and answer per document
/// ([`QueryOutcome::DoneDocs`]). Either way the engine's queueing,
/// deadlines, shedding, panic isolation, and ledger accounting apply
/// unchanged.
pub trait ServeIndex: Send + Sync {
    /// Resolve `patterns` (a worker's coalesced batch); the returned vector
    /// must have exactly one outcome per pattern, in order. Failures are
    /// per-pattern: a storage fault in one pattern's resolution should fail
    /// only that pattern. A panic fails the whole batch (the engine catches
    /// it, fails every request in the batch, and respawns the worker).
    fn answer_patterns(&self, patterns: &[&[Code]]) -> Vec<QueryOutcome>;

    /// Snapshot of the index's work counters, aggregated over whatever
    /// structures it queries (one backbone, or memtable + every segment).
    fn counters_snapshot(&self) -> CountersSnapshot;
}

/// The batching path every single-backbone engine shares: locate each
/// pattern's valid path, then answer all located patterns with one shared
/// backbone scan.
impl<S: FallibleSpineOps + Send + Sync> ServeIndex for S {
    fn answer_patterns(&self, patterns: &[&[Code]]) -> Vec<QueryOutcome> {
        let located: Vec<Located> = patterns
            .iter()
            .map(|p| {
                if p.is_empty() {
                    return Located::Empty;
                }
                match try_locate(self, p) {
                    Ok(Some(first)) => {
                        Located::At(Target { first_end: first, len: p.len() as u32 })
                    }
                    Ok(None) => Located::Absent,
                    Err(e) => Located::Error(e.to_string()),
                }
            })
            .collect();
        let targets: Vec<Target> = located
            .iter()
            .filter_map(|l| match l {
                Located::At(t) => Some(*t),
                _ => None,
            })
            .collect();
        let scanned: std::result::Result<_, String> =
            try_find_all_ends_batch(self, &targets).map_err(|e| e.to_string());
        located
            .iter()
            .map(|l| match (l, &scanned) {
                // The empty pattern ends at every node (serial
                // `find_all_ends` agrees: its scan accepts all of 0..=n).
                (Located::Empty, _) => {
                    QueryOutcome::Done((0..=self.text_len() as NodeId).collect())
                }
                (Located::Absent, _) => QueryOutcome::Done(Vec::new()),
                (Located::Error(e), _) => QueryOutcome::Failed(e.clone()),
                // Duplicate targets share one entry in the scan result, so
                // clone rather than remove. (remove would starve the twin.)
                (Located::At(t), Ok(map)) => {
                    QueryOutcome::Done(map.get(t).cloned().unwrap_or_default())
                }
                (Located::At(_), Err(e)) => QueryOutcome::Failed(e.clone()),
            })
            .collect()
    }

    fn counters_snapshot(&self) -> CountersSnapshot {
        self.ops_counters().snapshot()
    }
}

struct Request {
    id: QueryId,
    pattern: Vec<Code>,
    deadline: Option<Instant>,
    submitted_at: Instant,
}

/// The request-fate ledger. Plain fields mutated only under the state lock,
/// so a locked read is always internally consistent: `completed + shed +
/// timed_out + failed + pending.len() + in_flight == submitted`. (These were
/// once independent relaxed atomics, and snapshots taken concurrently with a
/// completion could transiently violate the invariant.)
#[derive(Default)]
struct Ledger {
    submitted: u64,
    completed: u64,
    shed: u64,
    timed_out: u64,
    failed: u64,
    worker_respawns: u64,
    peak_queue_depth: u64,
}

/// Queue + completion state behind one mutex; the three condvars separate
/// the "work arrived" (workers), "work finished" (drainers), and "queue
/// space freed" (blocked submitters) wakeups.
struct State {
    pending: VecDeque<Request>,
    done: Vec<QueryResult>,
    in_flight: usize,
    shutdown: bool,
    ledger: Ledger,
}

/// Stage histograms and span plumbing for one engine, pre-registered so the
/// worker loop's recording is wait-free. Present only on engines built with
/// [`QueryEngine::with_telemetry`].
struct EngineTelemetry {
    registry: Arc<MetricsRegistry>,
    admission_wait: Arc<Histogram>,
    batch_formation: Arc<Histogram>,
    index_scan: Arc<Histogram>,
    result_merge: Arc<Histogram>,
    /// Submit → publish, per query ("engine.query_latency").
    query_latency: Arc<Histogram>,
    /// Requests coalesced per backbone scan ("engine.batch_size").
    batch_size: Arc<Histogram>,
    /// Rolling qps/quantile window fed per published query
    /// ([`QueryEngine::with_observability`]).
    window: Option<Arc<SlidingWindow>>,
    /// SLO burn tracking fed per published query.
    slo: Option<Arc<SloTracker>>,
}

impl EngineTelemetry {
    fn new(registry: Arc<MetricsRegistry>) -> Self {
        EngineTelemetry {
            admission_wait: registry.stage(Stage::AdmissionWait),
            batch_formation: registry.stage(Stage::BatchFormation),
            index_scan: registry.stage(Stage::IndexScan),
            result_merge: registry.stage(Stage::ResultMerge),
            query_latency: registry.histogram("engine.query_latency"),
            batch_size: registry.histogram("engine.batch_size"),
            window: None,
            slo: None,
            registry,
        }
    }

    /// Record one finished query everywhere at once: the cumulative latency
    /// histogram plus (when attached) the rolling window and SLO tracker.
    /// `ok` is "the query produced an answer" — timeouts and storage
    /// failures count against availability.
    fn record_latency(&self, latency: Duration, ok: bool) {
        self.query_latency.record(latency);
        if let Some(w) = &self.window {
            w.record(latency, ok);
        }
        if let Some(s) = &self.slo {
            s.record(latency, ok);
        }
    }
}

/// Callback invoked after a worker panic is contained (batch failed,
/// ledger settled) and before the worker respawns. The argument is the
/// panic message. Runs outside the state lock, so it may do I/O — this is
/// the flight recorder's postmortem trigger.
pub type PanicHook = Arc<dyn Fn(&str) + Send + Sync>;

/// Callback invoked once per finalized query — completed, timed out, or
/// failed — immediately after its result is published and the state lock
/// released. The argument is the query's id. Runs on worker threads, so it
/// should be cheap (a timestamp store, a semaphore release); it may read
/// [`QueryEngine::metrics`] but must not block on [`QueryEngine::drain`].
/// This is how the open-loop load harness timestamps completions without
/// polling: latency measured from *intended* arrival to this callback
/// charges queue wait to the query instead of hiding it.
pub type CompletionHook = Arc<dyn Fn(QueryId) + Send + Sync>;

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    all_done: Condvar,
    space_free: Condvar,
    worker_stats: Vec<WorkerStats>,
    telemetry: Option<EngineTelemetry>,
    panic_hook: Mutex<Option<PanicHook>>,
    completion_hook: Mutex<Option<CompletionHook>>,
}

impl Shared {
    /// Lock the engine state, surviving mutex poisoning: a worker that
    /// panicked inside `answer_batch` never held this lock, and even if a
    /// future bug poisons it, serving degraded beats deadlocking `drain`.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wait<'a>(&self, cv: &Condvar, g: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        cv.wait(g).unwrap_or_else(PoisonError::into_inner)
    }

    fn notify_if_idle(&self, st: &State) {
        if st.pending.is_empty() && st.in_flight == 0 {
            self.all_done.notify_all();
        }
    }
}

/// A fixed pool of worker threads answering all-occurrence queries against
/// one shared, immutable SPINE index. See the [module docs](self).
///
/// Dropping the engine shuts the pool down; un-drained results are
/// discarded.
pub struct QueryEngine<S: ServeIndex + 'static> {
    index: Arc<S>,
    shared: Arc<Shared>,
    next_id: AtomicU64,
    queue_capacity: usize,
    shed_policy: ShedPolicy,
    pool: Vec<JoinHandle<()>>,
}

impl<S: ServeIndex + 'static> QueryEngine<S> {
    /// Spin up a worker pool over `index` with telemetry disabled.
    pub fn new(index: Arc<S>, config: EngineConfig) -> Self {
        Self::build(index, config, None)
    }

    /// Spin up a worker pool that records stage timings, query latencies,
    /// and tracing spans into `registry` (shareable with the storage layer
    /// so one snapshot covers the whole serving path).
    pub fn with_telemetry(
        index: Arc<S>,
        config: EngineConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Self {
        Self::build(index, config, Some(EngineTelemetry::new(registry)))
    }

    /// [`QueryEngine::with_telemetry`] plus continuous monitoring: every
    /// published query also feeds `window` (rolling qps/p50/p99/error-rate)
    /// and `slo` (burn-rate health). Their aggregates are registered as
    /// `engine.window.*` and `engine.slo.*` gauges on `registry`, so one
    /// snapshot — or the `/metrics` endpoint — carries the rolling view.
    pub fn with_observability(
        index: Arc<S>,
        config: EngineConfig,
        registry: Arc<MetricsRegistry>,
        window: Arc<SlidingWindow>,
        slo: Arc<SloTracker>,
    ) -> Self {
        window.register_gauges(&registry, "engine.window");
        slo.register_gauges(&registry, "engine.slo");
        let mut t = EngineTelemetry::new(registry);
        t.window = Some(window);
        t.slo = Some(slo);
        Self::build(index, config, Some(t))
    }

    fn build(index: Arc<S>, config: EngineConfig, telemetry: Option<EngineTelemetry>) -> Self {
        let workers = config.workers.max(1);
        let batch_max = config.batch_max.max(1);
        let queue_capacity = config.queue_capacity.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                pending: VecDeque::new(),
                done: Vec::new(),
                in_flight: 0,
                shutdown: false,
                ledger: Ledger::default(),
            }),
            work_ready: Condvar::new(),
            all_done: Condvar::new(),
            space_free: Condvar::new(),
            worker_stats: (0..workers).map(|_| WorkerStats::new()).collect(),
            telemetry,
            panic_hook: Mutex::new(None),
            completion_hook: Mutex::new(None),
        });
        let pool = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let index = Arc::clone(&index);
                std::thread::Builder::new()
                    .name(format!("spine-worker-{w}"))
                    .spawn(move || {
                        // Respawn-in-place: a panic escaping `worker_loop`
                        // (the batch that caused it has already been failed
                        // and accounted) restarts the loop on this same OS
                        // thread, so the pool never shrinks.
                        loop {
                            let run = catch_unwind(AssertUnwindSafe(|| {
                                worker_loop(&*index, &shared, w, batch_max)
                            }));
                            match run {
                                Ok(()) => return, // clean shutdown
                                Err(payload) => {
                                    shared.lock().ledger.worker_respawns += 1;
                                    // Fire the postmortem hook outside the
                                    // state lock: it may dump files.
                                    let hook = shared
                                        .panic_hook
                                        .lock()
                                        .unwrap_or_else(PoisonError::into_inner)
                                        .clone();
                                    if let Some(h) = hook {
                                        h(&panic_message(payload.as_ref()));
                                    }
                                }
                            }
                        }
                    })
                    .expect("spawn query worker")
            })
            .collect();
        QueryEngine {
            index,
            shared,
            next_id: AtomicU64::new(0),
            queue_capacity,
            shed_policy: config.shed,
            pool,
        }
    }

    /// The telemetry registry this engine records into, if any.
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.shared.telemetry.as_ref().map(|t| &t.registry)
    }

    /// Install a callback fired whenever a worker panic is contained (after
    /// the batch is failed and accounted, before the worker respawns),
    /// with the panic message. Replaces any previous hook. Runs on the
    /// panicking worker's thread, outside the engine's state lock.
    pub fn set_panic_hook(&self, hook: impl Fn(&str) + Send + Sync + 'static) {
        *self.shared.panic_hook.lock().unwrap_or_else(PoisonError::into_inner) =
            Some(Arc::new(hook));
    }

    /// Install a callback fired once per finalized query (completed, timed
    /// out, or failed) right after its result is published — see
    /// [`CompletionHook`]. Replaces any previous hook. Queries finalized
    /// before installation never fire it.
    pub fn set_completion_hook(&self, hook: impl Fn(QueryId) + Send + Sync + 'static) {
        *self.shared.completion_hook.lock().unwrap_or_else(PoisonError::into_inner) =
            Some(Arc::new(hook));
    }

    /// The shared index this engine answers from.
    pub fn index(&self) -> &Arc<S> {
        &self.index
    }

    /// Enqueue one pattern; returns its id, or
    /// [`SubmitError::Overloaded`] if the queue is full and the engine
    /// sheds. Under [`ShedPolicy::Block`] this never errors (it waits for
    /// space instead).
    pub fn submit(&self, pattern: Vec<Code>) -> std::result::Result<QueryId, SubmitError> {
        self.submit_request(pattern, None)
    }

    /// [`submit`](Self::submit) with a deadline: if `deadline` passes
    /// before a worker picks the request up, it completes as
    /// [`QueryOutcome::TimedOut`] without consuming a batch slot.
    pub fn submit_with_deadline(
        &self,
        pattern: Vec<Code>,
        deadline: Instant,
    ) -> std::result::Result<QueryId, SubmitError> {
        self.submit_request(pattern, Some(deadline))
    }

    fn submit_request(
        &self,
        pattern: Vec<Code>,
        deadline: Option<Instant>,
    ) -> std::result::Result<QueryId, SubmitError> {
        let mut st = self.shared.lock();
        while st.pending.len() >= self.queue_capacity {
            match self.shed_policy {
                ShedPolicy::RejectNewest => {
                    // Still under the lock: submitted and shed move together
                    // so no snapshot can catch one without the other.
                    st.ledger.submitted += 1;
                    st.ledger.shed += 1;
                    return Err(SubmitError::Overloaded);
                }
                ShedPolicy::Block => {
                    st = self.shared.wait(&self.shared.space_free, st);
                }
            }
        }
        let id = self.next_id.fetch_add(1, Relaxed);
        st.ledger.submitted += 1;
        st.pending.push_back(Request { id, pattern, deadline, submitted_at: Instant::now() });
        st.ledger.peak_queue_depth = st.ledger.peak_queue_depth.max(st.pending.len() as u64);
        drop(st);
        self.shared.work_ready.notify_one();
        Ok(id)
    }

    /// Enqueue many patterns; returns one admission result per pattern, in
    /// order. Under [`ShedPolicy::RejectNewest`] individual patterns may be
    /// shed while earlier ones were admitted.
    pub fn submit_batch<I>(&self, patterns: I) -> Vec<std::result::Result<QueryId, SubmitError>>
    where
        I: IntoIterator<Item = Vec<Code>>,
    {
        let out: Vec<_> = patterns.into_iter().map(|p| self.submit_request(p, None)).collect();
        if out.len() > 1 {
            self.shared.work_ready.notify_all();
        }
        out
    }

    /// True when the admission queue is at capacity (advisory; used by
    /// [`ShardedEngine`] to make broadcast admission all-or-nothing).
    pub(crate) fn is_full(&self) -> bool {
        self.shared.lock().pending.len() >= self.queue_capacity
    }

    /// Account one request shed before reaching this engine's queue.
    pub(crate) fn record_shed(&self) {
        let mut st = self.shared.lock();
        st.ledger.submitted += 1;
        st.ledger.shed += 1;
    }

    /// Block until every admitted query has an outcome, then return all
    /// accumulated results sorted by [`QueryId`].
    ///
    /// Never hangs: timed-out requests are finalized by workers without
    /// index work, and a worker panic fails its batch (restoring the
    /// in-flight count) before the worker respawns.
    pub fn drain(&self) -> Vec<QueryResult> {
        let mut st = self.shared.lock();
        while !(st.pending.is_empty() && st.in_flight == 0) {
            st = self.shared.wait(&self.shared.all_done, st);
        }
        let mut out = std::mem::take(&mut st.done);
        drop(st);
        out.sort_by_key(|r| r.id);
        out
    }

    /// Current activity counters. Cheap; safe to call while queries run.
    ///
    /// The ledger is read under the state lock, so the snapshot is
    /// self-consistent ([`MetricsSnapshot::is_consistent`]) even mid-flight.
    pub fn metrics(&self) -> MetricsSnapshot {
        let st = self.shared.lock();
        MetricsSnapshot {
            index: self.index.counters_snapshot(),
            workers: self.shared.worker_stats.iter().map(WorkerStats::read).collect(),
            submitted: st.ledger.submitted,
            completed: st.ledger.completed,
            shed: st.ledger.shed,
            timed_out: st.ledger.timed_out,
            failed: st.ledger.failed,
            pending: st.pending.len() as u64,
            in_flight: st.in_flight as u64,
            worker_respawns: st.ledger.worker_respawns,
            peak_queue_depth: st.ledger.peak_queue_depth,
        }
    }
}

impl<S: FallibleSpineOps + Send + Sync + 'static> QueryEngine<S> {
    /// Answer one pattern synchronously on the calling thread with a full
    /// EXPLAIN trace attached ([`crate::trace::QueryTrace`]).
    ///
    /// The request flows through the same ledger as queued submissions
    /// (submitted → in-flight → completed/failed), so
    /// [`MetricsSnapshot::is_consistent`] holds on every snapshot taken
    /// while the traced query runs, and telemetry-enabled engines record
    /// its end-to-end latency plus a `q<id>.explain` span like any other
    /// query. It bypasses the admission queue — EXPLAIN is a diagnostic
    /// read, not load — and never sheds.
    ///
    /// Only single-backbone ([`FallibleSpineOps`]) engines trace; composite
    /// stores explain per component ([`crate::SegmentedSpine::explain`]).
    ///
    /// A storage fault ends as [`QueryOutcome::Failed`] with the partial
    /// trace retained ([`crate::trace::QueryTrace::error`]).
    pub fn submit_traced(&self, pattern: Vec<Code>) -> (QueryResult, crate::trace::QueryTrace) {
        let start = Instant::now();
        let id = self.next_id.fetch_add(1, Relaxed);
        {
            let mut st = self.shared.lock();
            st.ledger.submitted += 1;
            st.in_flight += 1;
        }
        let trace = crate::trace::explain(self.index.as_ref(), &pattern);
        let outcome = match &trace.error {
            Some(e) => QueryOutcome::Failed(e.clone()),
            None => QueryOutcome::Done(trace.ends.clone()),
        };
        let mut st = self.shared.lock();
        st.in_flight -= 1;
        if outcome.is_answered() {
            st.ledger.completed += 1;
        } else {
            st.ledger.failed += 1;
        }
        if let Some(t) = &self.shared.telemetry {
            let published = Instant::now();
            let latency = published - start;
            t.record_latency(latency, outcome.is_answered());
            t.registry.record_span(format!("q{id}.explain"), start, latency);
        }
        self.shared.notify_if_idle(&st);
        drop(st);
        fire_completions(&self.shared, &mut vec![id]);
        (QueryResult { id, pattern, outcome }, trace)
    }
}

impl<S: ServeIndex + 'static> Drop for QueryEngine<S> {
    fn drop(&mut self) {
        self.shared.lock().shutdown = true;
        self.shared.work_ready.notify_all();
        self.shared.space_free.notify_all();
        for h in self.pool.drain(..) {
            let _ = h.join();
        }
    }
}

/// One worker: wait for work, coalesce up to `batch_max` live requests
/// (finalizing expired ones as [`QueryOutcome::TimedOut`] on the way),
/// resolve them in a single backbone scan, publish results, repeat until
/// shutdown.
///
/// A panic inside [`answer_batch`] (e.g. an index whose accessors panic) is
/// caught here just long enough to fail the batch's requests and restore the
/// accounting, then re-raised so the spawn loop in [`QueryEngine::new`] can
/// count the respawn.
fn worker_loop<S: ServeIndex + ?Sized>(index: &S, shared: &Shared, who: usize, batch_max: usize) {
    let telemetry = shared.telemetry.as_ref();
    loop {
        // Submit instants of the batch's requests, kept so publish can
        // record end-to-end latencies; empty when telemetry is off.
        let mut submitted_at: Vec<Instant> = Vec::new();
        // Ids finalized by this iteration, accumulated so the completion
        // hook can fire for each after the state lock is released.
        let mut finalized: Vec<QueryId> = Vec::new();
        let (batch, formation): (Vec<Request>, Duration) = {
            let mut st = shared.lock();
            let mut batch = Vec::new();
            let formation;
            loop {
                if !st.pending.is_empty() {
                    // Formation time covers only the coalescing pass, never
                    // the condvar waits below — it is worker *busy* time.
                    let form_start = Instant::now();
                    let now = form_start;
                    let mut expired = 0u64;
                    while batch.len() < batch_max {
                        let Some(req) = st.pending.pop_front() else { break };
                        if req.deadline.is_some_and(|d| d <= now) {
                            // Deadline passed while queued: finalize without
                            // spending a batch slot or any index work.
                            finalized.push(req.id);
                            st.done.push(QueryResult {
                                id: req.id,
                                pattern: req.pattern,
                                outcome: QueryOutcome::TimedOut,
                            });
                            expired += 1;
                        } else {
                            if let Some(t) = telemetry {
                                t.admission_wait.record(now - req.submitted_at);
                            }
                            batch.push(req);
                        }
                    }
                    if expired > 0 {
                        st.ledger.timed_out += expired;
                        shared.space_free.notify_all();
                    }
                    if !batch.is_empty() {
                        formation = form_start.elapsed();
                        break;
                    }
                    // Everything we popped had expired; the queue may be
                    // empty now, so fall through to the wait/shutdown checks.
                    shared.notify_if_idle(&st);
                    if st.pending.is_empty() {
                        if st.shutdown {
                            drop(st);
                            fire_completions(shared, &mut finalized);
                            return;
                        }
                        if !finalized.is_empty() {
                            // Fire the hook for the expired requests before
                            // sleeping — their results are already published
                            // and a hook user (e.g. a latency recorder) must
                            // not wait for the next submission to wake us.
                            drop(st);
                            fire_completions(shared, &mut finalized);
                            st = shared.lock();
                            continue;
                        }
                        st = shared.wait(&shared.work_ready, st);
                    }
                    continue;
                }
                if st.shutdown {
                    return;
                }
                st = shared.wait(&shared.work_ready, st);
            }
            st.in_flight += batch.len();
            drop(st);
            shared.space_free.notify_all();
            (batch, formation)
        };
        // Expired requests finalized during formation, fired now that the
        // lock is released.
        fire_completions(shared, &mut finalized);
        shared.worker_stats[who].record(batch.len());
        if let Some(t) = telemetry {
            t.batch_formation.record(formation);
            t.batch_size.record_value(batch.len() as u64);
            submitted_at = batch.iter().map(|r| r.submitted_at).collect();
        }

        let scan_start = Instant::now();
        let results = match catch_unwind(AssertUnwindSafe(|| answer_batch(index, &batch))) {
            Ok(results) => results,
            Err(payload) => {
                // Poisoned batch: every request in it fails, the in-flight
                // count is restored so `drain` cannot hang, and the panic
                // continues upward to be counted as a respawn.
                let msg = panic_message(payload.as_ref());
                finalized.extend(batch.iter().map(|r| r.id));
                let mut st = shared.lock();
                st.in_flight -= batch.len();
                st.ledger.failed += batch.len() as u64;
                for req in batch {
                    st.done.push(QueryResult {
                        id: req.id,
                        pattern: req.pattern,
                        outcome: QueryOutcome::Failed(format!("worker panicked: {msg}")),
                    });
                }
                shared.notify_if_idle(&st);
                drop(st);
                fire_completions(shared, &mut finalized);
                resume_unwind(payload);
            }
        };
        let scan_elapsed = scan_start.elapsed();
        if let Some(t) = telemetry {
            t.index_scan.record(scan_elapsed);
        }

        let merge_start = Instant::now();
        let mut st = shared.lock();
        st.in_flight -= batch.len();
        for r in &results {
            match r.outcome {
                QueryOutcome::Done(_) | QueryOutcome::DoneDocs(_) => st.ledger.completed += 1,
                QueryOutcome::TimedOut => st.ledger.timed_out += 1,
                QueryOutcome::Failed(_) => st.ledger.failed += 1,
            };
        }
        if let Some(t) = telemetry {
            // Recorded before notify_if_idle wakes drainers, so a snapshot
            // taken after `drain` returns deterministically covers every
            // drained query. Histogram records are wait-free; the span ring
            // mutex nests inside the state lock (never the reverse).
            let published = Instant::now();
            t.result_merge.record(published - merge_start);
            // One span per batch, one per query (submit → publish).
            t.registry.record_span(format!("w{who}.batch"), scan_start, published - scan_start);
            for (r, at) in results.iter().zip(&submitted_at) {
                let latency = published - *at;
                t.record_latency(latency, r.outcome.is_answered());
                t.registry.record_span(format!("q{}", r.id), *at, latency);
            }
        }
        finalized.extend(results.iter().map(|r| r.id));
        st.done.extend(results);
        shared.notify_if_idle(&st);
        drop(st);
        fire_completions(shared, &mut finalized);
    }
}

/// Fire the engine's completion hook (if installed) for every id in `ids`,
/// draining the vector. Callers must have released the state lock: the hook
/// is user code and may take the engine's metrics (which re-locks it).
fn fire_completions(shared: &Shared, ids: &mut Vec<QueryId>) {
    if ids.is_empty() {
        return;
    }
    let hook = shared.completion_hook.lock().unwrap_or_else(PoisonError::into_inner).clone();
    if let Some(h) = hook {
        for id in ids.drain(..) {
            h(id);
        }
    } else {
        ids.clear();
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Per-request fate after the locate phase, before the shared scan.
enum Located {
    /// Empty pattern: answered positionally, no scan needed.
    Empty,
    /// Pattern does not occur; answers with no occurrences.
    Absent,
    /// First occurrence found; the shared scan resolves the rest.
    At(Target),
    /// Storage failure during the valid-path walk.
    Error(String),
}

/// Resolve a coalesced batch through the index's [`ServeIndex`] surface and
/// pair each outcome back with its request.
///
/// Failure is per-request (the contract `answer_patterns` documents); an
/// index that returns the wrong number of outcomes panics here, which the
/// worker's catch_unwind turns into a failed batch plus a respawn.
fn answer_batch<S: ServeIndex + ?Sized>(index: &S, batch: &[Request]) -> Vec<QueryResult> {
    let patterns: Vec<&[Code]> = batch.iter().map(|r| r.pattern.as_slice()).collect();
    let outcomes = index.answer_patterns(&patterns);
    assert_eq!(
        outcomes.len(),
        batch.len(),
        "ServeIndex::answer_patterns must return one outcome per pattern"
    );
    batch
        .iter()
        .zip(outcomes)
        .map(|(r, outcome)| QueryResult { id: r.id, pattern: r.pattern.clone(), outcome })
        .collect()
}

/// How one broadcast pattern ended up across every shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardedOutcome {
    /// Every shard answered; occurrences are merged in global coordinates.
    Done(Vec<DocMatch>),
    /// At least one shard timed the request out (and none failed).
    TimedOut,
    /// At least one shard failed the request; messages are joined.
    Failed(String),
}

/// An occurrence set merged across shards, tagged with global document ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedResult {
    /// Id from [`ShardedEngine::submit`].
    pub id: QueryId,
    /// The pattern.
    pub pattern: Vec<Code>,
    /// How the broadcast ended up.
    pub outcome: ShardedOutcome,
}

impl ShardedResult {
    /// Merged matches if every shard answered, `None` otherwise.
    pub fn matches(&self) -> Option<&[DocMatch]> {
        match &self.outcome {
            ShardedOutcome::Done(m) => Some(m),
            _ => None,
        }
    }

    /// Merged matches; panics if any shard timed out or failed.
    pub fn expect_matches(&self) -> &[DocMatch] {
        match &self.outcome {
            ShardedOutcome::Done(m) => m,
            other => panic!("sharded query {} did not complete: {other:?}", self.id),
        }
    }
}

/// Document-sharded deployment: `n` generalized SPINE indexes, each fronted
/// by its own [`QueryEngine`], with patterns broadcast to every shard and
/// the per-shard answers merged back into global document coordinates.
///
/// Sharding bounds per-index backbone length (shorter scans, independent
/// construction) at the cost of running every pattern `n` times; it is the
/// deployment §6 of the paper gestures at for corpora beyond one index.
///
/// Admission is all-or-nothing: under [`ShedPolicy::RejectNewest`] a
/// broadcast is shed *before* reaching any shard queue when any shard is
/// full, so the per-shard result streams always stay index-aligned.
pub struct ShardedEngine {
    engines: Vec<QueryEngine<GeneralizedSpine>>,
    /// `global_doc[s][d]` = global id of shard `s`'s local document `d`.
    global_doc: Vec<Vec<usize>>,
    shed_policy: ShedPolicy,
    /// Serializes broadcasts so every shard sees the same request order and
    /// the all-shards-have-space check cannot interleave with another
    /// submitter's pushes.
    submit_lock: Mutex<()>,
    submitted: AtomicU64,
    /// Registry + merge histogram when built with telemetry.
    telemetry: Option<(Arc<MetricsRegistry>, Arc<Histogram>)>,
}

impl ShardedEngine {
    /// Partition `docs` round-robin across `shards` generalized indexes and
    /// start a worker pool (of `config.workers` threads *per shard*) over
    /// each.
    pub fn build(
        alphabet: Alphabet,
        docs: &[Vec<Code>],
        shards: usize,
        config: EngineConfig,
    ) -> Result<Self> {
        Self::build_inner(alphabet, docs, shards, config, None)
    }

    /// [`build`](Self::build), with every shard engine and the cross-shard
    /// merge recording into one shared `registry`.
    pub fn build_with_telemetry(
        alphabet: Alphabet,
        docs: &[Vec<Code>],
        shards: usize,
        config: EngineConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Result<Self> {
        Self::build_inner(alphabet, docs, shards, config, Some(registry))
    }

    fn build_inner(
        alphabet: Alphabet,
        docs: &[Vec<Code>],
        shards: usize,
        config: EngineConfig,
        registry: Option<Arc<MetricsRegistry>>,
    ) -> Result<Self> {
        let shards = shards.max(1).min(docs.len().max(1));
        let mut indexes: Vec<GeneralizedSpine> =
            (0..shards).map(|_| GeneralizedSpine::new(alphabet.clone())).collect();
        let mut global_doc: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (g, doc) in docs.iter().enumerate() {
            let s = g % shards;
            indexes[s].add_document(doc)?;
            global_doc[s].push(g);
        }
        let engines = indexes
            .into_iter()
            .map(|ix| match &registry {
                Some(r) => QueryEngine::with_telemetry(Arc::new(ix), config, Arc::clone(r)),
                None => QueryEngine::new(Arc::new(ix), config),
            })
            .collect();
        Ok(ShardedEngine {
            engines,
            global_doc,
            shed_policy: config.shed,
            submit_lock: Mutex::new(()),
            submitted: AtomicU64::new(0),
            telemetry: registry.map(|r| {
                let merge = r.stage(Stage::ResultMerge);
                (r, merge)
            }),
        })
    }

    /// Number of shards actually built.
    pub fn shard_count(&self) -> usize {
        self.engines.len()
    }

    /// Broadcast one pattern to every shard, or shed it from all of them.
    pub fn submit(&self, pattern: Vec<Code>) -> std::result::Result<QueryId, SubmitError> {
        self.submit_request(pattern, None)
    }

    /// [`submit`](Self::submit) with a deadline applied on every shard.
    pub fn submit_with_deadline(
        &self,
        pattern: Vec<Code>,
        deadline: Instant,
    ) -> std::result::Result<QueryId, SubmitError> {
        self.submit_request(pattern, Some(deadline))
    }

    fn submit_request(
        &self,
        pattern: Vec<Code>,
        deadline: Option<Instant>,
    ) -> std::result::Result<QueryId, SubmitError> {
        let _serial = self.submit_lock.lock().unwrap_or_else(PoisonError::into_inner);
        if self.shed_policy == ShedPolicy::RejectNewest
            && self.engines.iter().any(QueryEngine::is_full)
        {
            // Shed from every shard before touching any queue: workers only
            // ever *free* space, so a non-full check under the submit lock
            // cannot be invalidated before the pushes below.
            for e in &self.engines {
                e.record_shed();
            }
            return Err(SubmitError::Overloaded);
        }
        for e in &self.engines {
            let admitted = match deadline {
                Some(d) => e.submit_with_deadline(pattern.clone(), d),
                None => e.submit(pattern.clone()),
            };
            admitted.expect("shard admission is all-or-nothing under the submit lock");
        }
        Ok(self.submitted.fetch_add(1, Relaxed))
    }

    /// Wait for all shards, merge each pattern's per-shard occurrences into
    /// global document coordinates, and return results in submission order.
    ///
    /// Every shard receives every admitted pattern in the same order, so the
    /// shard-local result streams (sorted by shard-local id) align
    /// index-for-index with the global submission order. A request that
    /// failed or timed out on any shard reports that fate globally.
    pub fn drain(&self) -> Vec<ShardedResult> {
        let per_shard: Vec<Vec<QueryResult>> = self.engines.iter().map(|e| e.drain()).collect();
        // Timed from here: only the cross-shard merge below, not the blocking
        // shard drains above.
        let merge_start = Instant::now();
        let n = per_shard.first().map(|v| v.len()).unwrap_or(0);
        let mut out = Vec::with_capacity(n);
        for q in 0..n {
            let pattern = per_shard[0][q].pattern.clone();
            let plen = pattern.len();
            let mut matches: Vec<DocMatch> = Vec::new();
            let mut timed_out = false;
            let mut failures: Vec<String> = Vec::new();
            for (s, results) in per_shard.iter().enumerate() {
                let shard_index = self.engines[s].index();
                match &results[q].outcome {
                    QueryOutcome::Done(ends) => {
                        for &end in ends {
                            let local = shard_index.localize(end as usize - plen);
                            matches.push(DocMatch {
                                doc: self.global_doc[s][local.doc],
                                offset: local.offset,
                            });
                        }
                    }
                    // Shard engines answer through the concatenation path
                    // today; if a future shard index answers per document,
                    // its local doc ids still map through the same table.
                    QueryOutcome::DoneDocs(ms) => {
                        for m in ms {
                            matches.push(DocMatch {
                                doc: self.global_doc[s][m.doc],
                                offset: m.offset,
                            });
                        }
                    }
                    QueryOutcome::TimedOut => timed_out = true,
                    QueryOutcome::Failed(e) => failures.push(format!("shard {s}: {e}")),
                }
            }
            let outcome = if !failures.is_empty() {
                ShardedOutcome::Failed(failures.join("; "))
            } else if timed_out {
                ShardedOutcome::TimedOut
            } else {
                matches.sort_unstable();
                ShardedOutcome::Done(matches)
            };
            out.push(ShardedResult { id: q as QueryId, pattern, outcome });
        }
        if let Some((registry, merge)) = &self.telemetry {
            let elapsed = merge_start.elapsed();
            merge.record(elapsed);
            registry.record_span("sharded.merge", merge_start, elapsed);
        }
        out
    }

    /// Aggregated metrics: index counters summed across shards, worker lists
    /// concatenated, queue depth taken as the per-shard maximum.
    ///
    /// Each shard's snapshot is consistent, but the shards are sampled one
    /// after another, so the *aggregate* invariant only holds when no
    /// submission is racing the aggregation (per-shard ledgers move
    /// independently between samples).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut agg = MetricsSnapshot::default();
        for e in &self.engines {
            let m = e.metrics();
            agg.index += m.index;
            agg.workers.extend(m.workers);
            agg.submitted += m.submitted;
            agg.completed += m.completed;
            agg.shed += m.shed;
            agg.timed_out += m.timed_out;
            agg.failed += m.failed;
            agg.pending += m.pending;
            agg.in_flight += m.in_flight;
            agg.worker_respawns += m.worker_respawns;
            agg.peak_queue_depth = agg.peak_queue_depth.max(m.peak_queue_depth);
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Spine;
    use crate::compact::CompactSpine;
    use crate::occurrences::find_all_ends;
    use std::time::Duration;
    use strindex::Alphabet;

    #[test]
    fn worker_panic_fires_the_postmortem_hook_and_respawns() {
        struct Bomb;
        impl ServeIndex for Bomb {
            fn answer_patterns(&self, _patterns: &[&[Code]]) -> Vec<QueryOutcome> {
                panic!("bomb in answer_patterns")
            }
            fn counters_snapshot(&self) -> CountersSnapshot {
                CountersSnapshot::default()
            }
        }
        let cfg = EngineConfig { workers: 1, ..EngineConfig::default() };
        let engine = QueryEngine::new(Arc::new(Bomb), cfg);
        let fired = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = Arc::clone(&fired);
        engine.set_panic_hook(move |msg| sink.lock().unwrap().push(msg.to_string()));
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        engine.submit(vec![0]).unwrap();
        let rs = engine.drain();
        assert!(
            matches!(&rs[0].outcome, QueryOutcome::Failed(m) if m.contains("bomb")),
            "batch must fail with the panic message: {rs:?}"
        );
        // The hook runs on the worker thread after the drain notification;
        // give it a bounded moment.
        let deadline = Instant::now() + Duration::from_secs(10);
        while fired.lock().unwrap().is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        std::panic::set_hook(prev_hook);
        assert_eq!(engine.metrics().worker_respawns, 1);
        let msgs = fired.lock().unwrap();
        assert_eq!(msgs.len(), 1, "hook must fire exactly once");
        assert!(msgs[0].contains("bomb"), "hook gets the panic message: {msgs:?}");
    }

    fn paper_engine(workers: usize) -> (Alphabet, QueryEngine<Spine>) {
        let a = Alphabet::dna();
        let s = Spine::build_from_bytes(a.clone(), b"AACCACAACA").unwrap();
        let cfg = EngineConfig { workers, batch_max: 4, ..Default::default() };
        (a.clone(), QueryEngine::new(Arc::new(s), cfg))
    }

    #[test]
    fn observability_feeds_window_and_slo() {
        let a = Alphabet::dna();
        let s = Spine::build_from_bytes(a.clone(), b"AACCACAACA").unwrap();
        let registry = Arc::new(MetricsRegistry::new());
        let window = Arc::new(SlidingWindow::new(60, Duration::from_secs(1)));
        let slo = Arc::new(SloTracker::new(Duration::from_secs(5), 0.999));
        let engine = QueryEngine::with_observability(
            Arc::new(s),
            EngineConfig { workers: 2, ..Default::default() },
            Arc::clone(&registry),
            Arc::clone(&window),
            Arc::clone(&slo),
        );
        for p in [&b"CA"[..], b"AC", b"A", b"GG"] {
            engine.submit(a.encode(p).unwrap()).unwrap();
        }
        engine.drain();
        // Every published query landed in the rolling window, none breached
        // the generous SLO, and the gauges surface through the registry.
        let agg = window.aggregate();
        assert_eq!(agg.count, 4);
        assert_eq!(agg.errors, 0);
        assert!(slo.healthy());
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("engine.window.count"), Some(4));
        assert_eq!(snap.gauge("engine.slo.healthy"), Some(1));
        assert_eq!(snap.histogram("engine.query_latency").unwrap().count, 4);
    }

    #[test]
    fn answers_match_serial_scan() {
        let (a, engine) = paper_engine(3);
        let pats = [&b"CA"[..], b"AC", b"A", b"AACCACAACA", b"GG", b""];
        let ids: Vec<QueryId> =
            pats.iter().map(|p| engine.submit(a.encode(p).unwrap()).unwrap()).collect();
        let results = engine.drain();
        assert_eq!(results.len(), pats.len());
        for (i, (r, p)) in results.iter().zip(&pats).enumerate() {
            assert_eq!(r.id, ids[i]);
            let serial = find_all_ends(engine.index().as_ref(), &a.encode(p).unwrap());
            assert_eq!(r.expect_ends(), serial, "pattern {p:?}");
        }
    }

    #[test]
    fn starts_are_zero_based_offsets() {
        let (a, engine) = paper_engine(1);
        engine.submit(a.encode(b"CA").unwrap()).unwrap();
        let r = engine.drain();
        assert_eq!(r[0].expect_ends(), [5, 7, 10]);
        assert_eq!(r[0].expect_starts(), vec![3, 5, 8]);
        assert_eq!(r[0].ends(), Some(&[5, 7, 10][..]));
    }

    #[test]
    fn duplicate_patterns_each_get_answers() {
        let (a, engine) = paper_engine(1); // one worker ⇒ one coalesced batch
        let ca = a.encode(b"CA").unwrap();
        for admitted in engine.submit_batch(vec![ca.clone(), ca.clone(), ca.clone(), ca]) {
            admitted.unwrap();
        }
        let results = engine.drain();
        assert_eq!(results.len(), 4);
        for r in results {
            assert_eq!(r.expect_ends(), [5, 7, 10]);
        }
    }

    #[test]
    fn drain_on_idle_engine_is_empty_and_repeatable() {
        let (a, engine) = paper_engine(2);
        assert!(engine.drain().is_empty());
        engine.submit(a.encode(b"A").unwrap()).unwrap();
        assert_eq!(engine.drain().len(), 1);
        assert!(engine.drain().is_empty()); // results were consumed
    }

    #[test]
    fn metrics_count_batches_and_queries() {
        let (a, engine) = paper_engine(1);
        for admitted in engine.submit_batch((0..10).map(|_| a.encode(b"AC").unwrap())) {
            admitted.unwrap();
        }
        engine.drain();
        let m = engine.metrics();
        assert_eq!(m.submitted, 10);
        assert_eq!(m.completed, 10);
        assert_eq!(m.accounted(), m.submitted);
        assert_eq!(m.workers.iter().map(|w| w.queries).sum::<u64>(), 10);
        // batch_max = 4 ⇒ at least ⌈10/4⌉ = 3 scans, and coalescing means
        // strictly fewer scans than queries.
        let batches = m.batches();
        assert!((3..=10).contains(&batches), "batches = {batches}");
        assert!(m.index.nodes_checked > 0);
        assert!(m.peak_queue_depth >= 1);
        assert!(m.mean_batch() >= 1.0);
        assert_eq!(m.worker_respawns, 0);
    }

    #[test]
    fn works_over_the_compact_layout() {
        let a = Alphabet::dna();
        let c = CompactSpine::build_from_bytes(a.clone(), b"AACCACAACA").unwrap();
        let cfg = EngineConfig { workers: 2, batch_max: 8, ..Default::default() };
        let engine = QueryEngine::new(Arc::new(c), cfg);
        engine.submit(a.encode(b"AAC").unwrap()).unwrap();
        let r = engine.drain();
        assert_eq!(r[0].expect_starts(), vec![0, 6]);
    }

    #[test]
    fn empty_text_engine_answers() {
        let a = Alphabet::dna();
        let s = Spine::build(a.clone(), &[]).unwrap();
        let engine = QueryEngine::new(Arc::new(s), EngineConfig::default());
        engine.submit(a.encode(b"A").unwrap()).unwrap();
        engine.submit(Vec::new()).unwrap();
        let r = engine.drain();
        assert_eq!(r[0].expect_ends(), [] as [NodeId; 0]);
        assert_eq!(r[1].expect_ends(), [0]); // empty pattern ends at the root
    }

    #[test]
    fn edge_patterns_through_engine() {
        let (a, engine) = paper_engine(2);
        let n = 10; // text length of AACCACAACA
        let empty = engine.submit(Vec::new()).unwrap();
        let longer = engine.submit(a.encode(&b"A".repeat(n + 5)).unwrap()).unwrap();
        let out_of_alphabet = engine.submit(vec![9, 200, 7]).unwrap();
        let results = engine.drain();
        let by_id = |id| results.iter().find(|r| r.id == id).unwrap();
        // Empty pattern ends at every node.
        assert_eq!(by_id(empty).expect_ends().len(), n + 1);
        // A pattern longer than the text cannot occur, and must not panic.
        assert_eq!(by_id(longer).expect_ends(), [] as [NodeId; 0]);
        // Codes outside the alphabet simply never match a rib or vertebra.
        assert_eq!(by_id(out_of_alphabet).expect_ends(), [] as [NodeId; 0]);
        let m = engine.metrics();
        assert_eq!(m.accounted(), m.submitted);
    }

    #[test]
    fn expired_deadline_times_out_without_index_work() {
        let (a, engine) = paper_engine(1);
        let past = Instant::now() - Duration::from_secs(1);
        let id = engine.submit_with_deadline(a.encode(b"CA").unwrap(), past).unwrap();
        let r = engine.drain();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].id, id);
        assert_eq!(r[0].outcome, QueryOutcome::TimedOut);
        assert!(r[0].ends().is_none());
        let m = engine.metrics();
        assert_eq!(m.timed_out, 1);
        assert_eq!(m.completed, 0);
        assert_eq!(m.accounted(), m.submitted);
    }

    #[test]
    fn generous_deadline_completes_normally() {
        let (a, engine) = paper_engine(2);
        let soon = Instant::now() + Duration::from_secs(60);
        engine.submit_with_deadline(a.encode(b"CA").unwrap(), soon).unwrap();
        let r = engine.drain();
        assert_eq!(r[0].expect_starts(), vec![3, 5, 8]);
    }

    #[test]
    fn sharded_engine_matches_unsharded_generalized() {
        let a = Alphabet::dna();
        let docs: Vec<Vec<Code>> = [&b"ACGTACGT"[..], b"TTACG", b"GGGG", b"ACACAC", b"T"]
            .iter()
            .map(|d| a.encode(d).unwrap())
            .collect();

        let mut reference = GeneralizedSpine::new(a.clone());
        for d in &docs {
            reference.add_document(d).unwrap();
        }

        let cfg = EngineConfig { workers: 2, batch_max: 4, ..Default::default() };
        let sharded = ShardedEngine::build(a.clone(), &docs, 3, cfg).unwrap();
        assert_eq!(sharded.shard_count(), 3);

        let pats = [&b"ACG"[..], b"T", b"GG", b"CACA", b"TTT"];
        for p in pats {
            sharded.submit(a.encode(p).unwrap()).unwrap();
        }
        let results = sharded.drain();
        assert_eq!(results.len(), pats.len());
        for (r, p) in results.iter().zip(&pats) {
            assert_eq!(
                r.expect_matches(),
                reference.find_all(&a.encode(p).unwrap()),
                "pattern {p:?}"
            );
        }

        let m = sharded.metrics();
        assert_eq!(m.completed, (pats.len() * sharded.shard_count()) as u64);
        assert_eq!(m.workers.len(), 2 * sharded.shard_count());
        assert_eq!(m.accounted(), m.submitted);
    }

    #[test]
    fn sharded_engine_single_shard_degenerate() {
        let a = Alphabet::dna();
        let docs = vec![a.encode(b"ACGT").unwrap()];
        let sharded = ShardedEngine::build(a.clone(), &docs, 8, EngineConfig::default()).unwrap();
        assert_eq!(sharded.shard_count(), 1); // clamped to doc count
        sharded.submit(a.encode(b"CG").unwrap()).unwrap();
        let r = sharded.drain();
        assert_eq!(r[0].expect_matches(), [DocMatch { doc: 0, offset: 1 }]);
    }

    #[test]
    fn sharded_edge_patterns() {
        let a = Alphabet::dna();
        let docs: Vec<Vec<Code>> =
            [&b"ACGT"[..], b"TT"].iter().map(|d| a.encode(d).unwrap()).collect();
        let sharded = ShardedEngine::build(a.clone(), &docs, 2, EngineConfig::default()).unwrap();
        sharded.submit(a.encode(&b"A".repeat(64)).unwrap()).unwrap(); // longer than any doc
        sharded.submit(vec![17]).unwrap(); // out-of-alphabet code
        let r = sharded.drain();
        assert_eq!(r[0].expect_matches(), [] as [DocMatch; 0]);
        assert_eq!(r[1].expect_matches(), [] as [DocMatch; 0]);
    }

    #[test]
    fn sharded_expired_deadline_reports_timeout() {
        let a = Alphabet::dna();
        let docs = vec![a.encode(b"ACGTACGT").unwrap(), a.encode(b"TTACG").unwrap()];
        let cfg = EngineConfig { workers: 1, ..Default::default() };
        let sharded = ShardedEngine::build(a.clone(), &docs, 2, cfg).unwrap();
        let past = Instant::now() - Duration::from_secs(1);
        sharded.submit_with_deadline(a.encode(b"ACG").unwrap(), past).unwrap();
        let r = sharded.drain();
        assert_eq!(r[0].outcome, ShardedOutcome::TimedOut);
        assert!(r[0].matches().is_none());
        let m = sharded.metrics();
        assert_eq!(m.accounted(), m.submitted);
    }

    #[test]
    fn snapshot_invariant_holds_mid_flight() {
        // Regression for torn MetricsSnapshot reads: the ledger was a set of
        // independent relaxed atomics, so a snapshot racing completions
        // could observe submitted without the matching outcome. With the
        // ledger under the state lock, every snapshot must satisfy
        // accounted + pending + in_flight == submitted — sampled here as
        // fast as possible while queries stream through the engine.
        let a = Alphabet::dna();
        let s = Spine::build_from_bytes(a.clone(), &b"ACGTACGTGGTTAACC".repeat(32)).unwrap();
        let cfg = EngineConfig { workers: 3, batch_max: 4, ..Default::default() };
        let engine = QueryEngine::new(Arc::new(s), cfg);
        let pat = a.encode(b"ACGT").unwrap();
        std::thread::scope(|scope| {
            let eng = &engine;
            let submitter = scope.spawn(move || {
                for _ in 0..2_000 {
                    eng.submit(pat.clone()).unwrap();
                }
            });
            let mut samples = 0u64;
            while !submitter.is_finished() || samples < 100 {
                let m = eng.metrics();
                assert!(
                    m.is_consistent(),
                    "torn snapshot: {} accounted + {} pending + {} in-flight != {} submitted",
                    m.accounted(),
                    m.pending,
                    m.in_flight,
                    m.submitted
                );
                samples += 1;
            }
            submitter.join().unwrap();
        });
        engine.drain();
        let m = engine.metrics();
        assert!(m.is_consistent());
        assert_eq!(m.accounted(), m.submitted); // idle: nothing queued
        assert_eq!(m.completed, 2_000);
    }

    #[test]
    fn telemetry_records_stages_latency_and_spans() {
        let a = Alphabet::dna();
        let s = Spine::build_from_bytes(a.clone(), b"AACCACAACA").unwrap();
        let registry = Arc::new(MetricsRegistry::new());
        let cfg = EngineConfig { workers: 2, batch_max: 4, ..Default::default() };
        let engine = QueryEngine::with_telemetry(Arc::new(s), cfg, Arc::clone(&registry));
        assert!(engine.registry().is_some());
        for _ in 0..10 {
            engine.submit(a.encode(b"CA").unwrap()).unwrap();
        }
        engine.drain();
        let snap = registry.snapshot();
        for stage in
            [Stage::AdmissionWait, Stage::BatchFormation, Stage::IndexScan, Stage::ResultMerge]
        {
            let h = snap.stage(stage).unwrap_or_else(|| panic!("{stage:?} not registered"));
            assert!(!h.is_empty(), "{stage:?} recorded nothing");
        }
        let lat = snap.histogram("engine.query_latency").unwrap();
        assert_eq!(lat.count, 10);
        assert!(lat.p50() <= lat.p99());
        let sizes = snap.histogram("engine.batch_size").unwrap();
        assert!(sizes.max >= 1 && sizes.max <= 4);
        // Per-query and per-batch spans both present.
        assert!(snap.spans.iter().any(|s| s.name.starts_with('q')));
        assert!(snap.spans.iter().any(|s| s.name.contains(".batch")));
        // A plain engine records nothing and has no registry.
        let plain = paper_engine(1).1;
        assert!(plain.registry().is_none());
    }

    #[test]
    fn sharded_telemetry_shares_one_registry() {
        let a = Alphabet::dna();
        let docs: Vec<Vec<Code>> =
            [&b"ACGTACGT"[..], b"TTACG", b"GGGG"].iter().map(|d| a.encode(d).unwrap()).collect();
        let registry = Arc::new(MetricsRegistry::new());
        let cfg = EngineConfig { workers: 1, batch_max: 4, ..Default::default() };
        let sharded =
            ShardedEngine::build_with_telemetry(a.clone(), &docs, 2, cfg, Arc::clone(&registry))
                .unwrap();
        sharded.submit(a.encode(b"ACG").unwrap()).unwrap();
        sharded.submit(a.encode(b"G").unwrap()).unwrap();
        sharded.drain();
        let snap = registry.snapshot();
        // Both shards fed the same stage histograms (2 queries × 2 shards).
        assert_eq!(snap.histogram("engine.query_latency").unwrap().count, 4);
        // The cross-shard merge recorded into ResultMerge and left a span.
        assert!(snap.spans.iter().any(|s| s.name == "sharded.merge"));
        let m = sharded.metrics();
        assert!(m.is_consistent());
    }

    #[test]
    fn submit_traced_accounts_and_matches_queued_answers() {
        let (a, engine) = paper_engine(2);
        let (r, t) = engine.submit_traced(a.encode(b"CA").unwrap());
        assert_eq!(r.expect_ends(), [5, 7, 10]);
        assert_eq!(t.ends, vec![5, 7, 10]);
        assert!(t.error.is_none());
        t.verify_against_text(&a.encode(b"AACCACAACA").unwrap()).unwrap();
        // Queued and traced submissions share one ledger.
        engine.submit(a.encode(b"AC").unwrap()).unwrap();
        engine.drain();
        let m = engine.metrics();
        assert_eq!((m.submitted, m.completed), (2, 2));
        assert!(m.is_consistent());
        // Absent patterns trace their mismatch and answer Done([]).
        let (r, t) = engine.submit_traced(a.encode(b"GG").unwrap());
        assert_eq!(r.expect_ends(), [] as [NodeId; 0]);
        assert_eq!(t.first_end, None);
    }

    #[test]
    fn submit_traced_records_latency_and_span() {
        let a = Alphabet::dna();
        let s = Spine::build_from_bytes(a.clone(), b"AACCACAACA").unwrap();
        let registry = Arc::new(MetricsRegistry::new());
        let engine = QueryEngine::with_telemetry(
            Arc::new(s),
            EngineConfig::default(),
            Arc::clone(&registry),
        );
        engine.submit_traced(a.encode(b"ACA").unwrap());
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("engine.query_latency").unwrap().count, 1);
        assert!(snap.spans.iter().any(|sp| sp.name.ends_with(".explain")));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let a = Alphabet::dna();
        let s = Spine::build_from_bytes(a.clone(), b"AACCACAACA").unwrap();
        let cfg = EngineConfig {
            workers: 1,
            queue_capacity: 0, // clamped to 1: the engine must stay usable
            ..Default::default()
        };
        let engine = QueryEngine::new(Arc::new(s), cfg);
        engine.submit(a.encode(b"CA").unwrap()).unwrap();
        assert_eq!(engine.drain()[0].expect_starts(), vec![3, 5, 8]);
    }
}
