//! Matching statistics and maximal matching substrings (Section 4).
//!
//! This is the paper's headline workload: given a data string S1 (indexed)
//! and a query string S2, find **all maximal matching substrings, including
//! repetitions, above a length threshold** — the core of genome alignment
//! tools such as MUMmer.
//!
//! The stream algorithm keeps the current match `(node, pl)`: the longest
//! suffix of the consumed query that is a substring of the data, ending at
//! `node` (its first-occurrence end) with length `pl`. On a mismatch it
//! follows the **link chain** upward; each chain node covers the whole set
//! of suffix lengths terminating there, so one edge check per chain node
//! replaces the suffix-by-suffix hops a suffix tree must make through its
//! suffix links (§4.1 — the source of the Table 6 gap, visible through
//! [`strindex::Counters`]).
//!
//! Occurrence expansion is deferred: all right-maximal matches are first
//! collected, then *one* backbone scan resolves every repetition
//! ([`crate::occurrences::find_all_ends_batch`]).
//!
//! Generic over [`SpineOps`]: shared by the reference, compact, and disk
//! representations.

use crate::build::Spine;
use crate::node::{NodeId, ROOT};
use crate::occurrences::{find_all_ends_batch, Target};
use crate::ops::SpineOps;
use strindex::{Code, MatchingIndex, MatchingStats, MaximalMatch};

/// From `node` with current match length `pl`, find the longest `k ≤ pl`
/// such that the length-`k` suffix of the current match extends by `c`.
/// Returns `(destination, k)`; `None` means no suffix *terminating at this
/// node* extends (the caller then shrinks via the link).
fn step_longest<S: SpineOps + ?Sized>(
    s: &S,
    node: NodeId,
    pl: u32,
    c: Code,
) -> Option<(NodeId, u32)> {
    s.ops_counters().count_node_check();
    if s.vertebra_out(node) == Some(c) {
        s.ops_counters().count_edge();
        return Some((node + 1, pl));
    }
    let (rdest, rpt) = s.rib_of(node, c)?;
    if rpt >= pl {
        s.ops_counters().count_edge();
        return Some((rdest, pl));
    }
    // The rib covers only lengths ≤ its PT; scan the extrib chain for
    // coverage of longer suffixes, keeping the best element seen.
    let prt = rpt;
    let (mut best_dest, mut best_pt) = (rdest, rpt);
    let mut at = rdest;
    loop {
        s.ops_counters().count_extrib();
        match s.extrib_of(at, prt) {
            Some((edest, ept)) if ept >= pl => {
                s.ops_counters().count_edge();
                return Some((edest, pl));
            }
            Some((edest, ept)) => {
                best_dest = edest;
                best_pt = ept;
                at = edest;
            }
            None => {
                s.ops_counters().count_edge();
                return Some((best_dest, best_pt));
            }
        }
    }
}

/// Longest match ending at every query position, streaming the query once
/// over the index.
pub fn matching_statistics<S: SpineOps + ?Sized>(s: &S, query: &[Code]) -> MatchingStats {
    let m = query.len();
    let mut lengths = vec![0u32; m + 1];
    let mut first_end = vec![0u32; m + 1];
    let mut node = ROOT;
    let mut pl = 0u32;
    for (e, &c) in query.iter().enumerate() {
        loop {
            if let Some((dest, k)) = step_longest(s, node, pl, c) {
                node = dest;
                pl = k + 1;
                break;
            }
            if node == ROOT {
                pl = 0;
                break;
            }
            // Shrink to the set of shorter suffixes (one hop covers all
            // lengths ≤ LEL at once).
            let (dest, lel) = s.link_of(node);
            pl = lel;
            node = dest;
            s.ops_counters().count_link();
        }
        lengths[e + 1] = pl;
        first_end[e + 1] = if pl > 0 { node } else { 0 };
    }
    MatchingStats { lengths, first_end }
}

/// All maximal matching substrings between `query` and the indexed text
/// with length ≥ `min_len`, including every text occurrence.
pub fn maximal_matches<S: SpineOps + ?Sized>(
    s: &S,
    query: &[Code],
    min_len: usize,
) -> Vec<MaximalMatch> {
    let stats = matching_statistics(s, query);
    let reports = stats.right_maximal(min_len);
    let targets: Vec<Target> = reports
        .iter()
        .map(|&(_, len, first_end)| Target { first_end: first_end as NodeId, len: len as u32 })
        .collect();
    let occurrences = find_all_ends_batch(s, &targets);
    let mut out = Vec::new();
    for (&(qs, len, _), t) in reports.iter().zip(&targets) {
        for &end in &occurrences[t] {
            out.push(MaximalMatch { query_start: qs, data_start: end as usize - len, len });
        }
    }
    out.sort();
    out
}

impl MatchingIndex for Spine {
    fn matching_statistics(&self, query: &[Code]) -> MatchingStats {
        matching_statistics(self, query)
    }

    fn maximal_matches(&self, query: &[Code], min_len: usize) -> Vec<MaximalMatch> {
        maximal_matches(self, query, min_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strindex::Alphabet;
    use suffix_trie::NaiveIndex;

    fn engines(data: &[u8]) -> (Alphabet, Spine, NaiveIndex) {
        let a = Alphabet::dna();
        let codes = a.encode(data).unwrap();
        let s = Spine::build(a.clone(), &codes).unwrap();
        let n = NaiveIndex::new(a.clone(), &codes);
        (a, s, n)
    }

    #[test]
    fn stats_match_naive_on_paper_string() {
        let (a, s, n) = engines(b"AACCACAACA");
        for q in [&b"CACA"[..], b"AACCACAACA", b"GATTACA", b"CCCC", b"ACAACAC"] {
            let q = a.encode(q).unwrap();
            assert_eq!(
                MatchingIndex::matching_statistics(&s, &q),
                n.matching_statistics(&q),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn maximal_matches_match_naive() {
        let (a, s, n) = engines(b"ACACCGACGATACGAGATTACGAGACGAGA");
        let q = a.encode(b"CATAGAGAGACGATTACGAGAAAACGGG").unwrap();
        for t in [1usize, 3, 6, 10] {
            assert_eq!(
                MatchingIndex::maximal_matches(&s, &q, t),
                n.maximal_matches(&q, t),
                "threshold {t}"
            );
        }
    }

    #[test]
    fn full_self_match() {
        // Matching the data against itself: the statistics end at the full
        // length and the longest maximal match covers the string.
        let (a, s, _) = engines(b"ACGTGTACC");
        let q = a.encode(b"ACGTGTACC").unwrap();
        let ms = MatchingIndex::matching_statistics(&s, &q);
        assert_eq!(*ms.lengths.last().unwrap(), 9);
        let mm = MatchingIndex::maximal_matches(&s, &q, 9);
        assert_eq!(mm, vec![MaximalMatch { query_start: 0, data_start: 0, len: 9 }]);
    }

    #[test]
    fn no_shared_symbols() {
        let (a, s, _) = engines(b"AAAA");
        let q = a.encode(b"GGGG").unwrap();
        let ms = MatchingIndex::matching_statistics(&s, &q);
        assert!(ms.lengths.iter().all(|&l| l == 0));
        assert!(MatchingIndex::maximal_matches(&s, &q, 1).is_empty());
    }

    #[test]
    fn empty_query() {
        let (_, s, _) = engines(b"ACGT");
        let ms = MatchingIndex::matching_statistics(&s, &[]);
        assert_eq!(ms.lengths, vec![0]);
        assert!(MatchingIndex::maximal_matches(&s, &[], 1).is_empty());
    }

    #[test]
    fn set_based_chasing_checks_fewer_nodes_than_lengths() {
        // A crude upper bound witnessing the §4.1 claim: the number of node
        // checks during matching must stay O(query length), not O(sum of
        // match lengths).
        let (a, s, _) = engines(b"ACGTACGTACGTACGTACGTACGTACGT");
        let q = a.encode(b"ACGTACGTACGTACGTACGTACGTACG").unwrap();
        s.counters().reset();
        MatchingIndex::matching_statistics(&s, &q);
        assert!(s.counters().nodes_checked() <= 3 * q.len() as u64 + 8);
    }
}
