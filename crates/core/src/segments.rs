//! A crash-safe LSM of SPINEs: mutable memtable, immutable sealed
//! segments, atomic manifest commits.
//!
//! [`Spine`](crate::Spine) is append-only and [`DiskSpine`] seals to an
//! immutable on-disk layout — neither supports deletes or survives being
//! half-written. [`SegmentedSpine`] composes them into a mutable, durable
//! collection the way log-structured merge trees do:
//!
//! * **Writes** go to an in-memory *memtable* ([`GeneralizedSpine`] plus
//!   the raw document codes). Memtable contents are volatile by design —
//!   there is no write-ahead log; durability is bought at *seal* time.
//! * At a size threshold the memtable is **sealed**: its live documents
//!   become one immutable layout-v2 segment file (the
//!   [`DiskSpine::build_sealed`] pipeline) plus a reopenable sidecar, and
//!   a new [`Manifest`] naming the enlarged segment set is committed.
//! * **Retires** of sealed documents become manifest *tombstones*;
//!   retires of memtable documents just flip a volatile flag (the
//!   document they hide is volatile too, so crash loses both together —
//!   never one without the other).
//! * A **merge** rewrites the live, untombstoned documents of every
//!   segment into one fresh segment, commits, then deletes the inputs.
//!
//! ## The commit protocol
//!
//! Every durable state transition — seal, retire, merge — is one manifest
//! replacement: encode, write `MANIFEST.tmp`, `fsync` it, `rename` over
//! `MANIFEST`, `fsync` the directory. Segment files are written (and
//! synced, header-last — see [`DiskSpine::seal_to`]) *before* the manifest
//! that references them, so at every instant the bytes `MANIFEST` names
//! are complete and synced. A crash at any point leaves either the old
//! manifest or the new one, never a torn state; files written for a commit
//! that never happened are *orphans* — recovery detects and reports them
//! ([`SegmentedSpine::orphan_count`]) but never reads them.
//!
//! ## Snapshots
//!
//! Queries run against an immutable snapshot: the segment list, tombstone
//! set, and memtable are shared via `Arc` and replaced (never mutated) on
//! seal and merge, and the memtable's document count and retired flags are
//! captured at snapshot time. A query observes the store exactly as of one
//! manifest epoch plus a memtable prefix, even while seals, merges, and
//! retires commit concurrently.
//!
//! ## Fault injection
//!
//! Every I/O operation the store performs — page reads/writes/syncs
//! through its devices *and* manifest/sidecar file operations — can be
//! charged to an [`IoGate`]. An armed gate fails permanently at a chosen
//! operation index, which is how the `exp faults` harness crash-tests
//! every commit, merge, and recovery I/O op and proves recovery always
//! lands on a committed epoch.

use std::collections::BTreeSet;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

use pagestore::{FileDevice, IoStats, Lru, PageDevice};
use parking_lot::{Mutex, RwLock};
use strindex::telemetry::{Histogram, MetricsRegistry};
use strindex::{Alphabet, Code, CountersSnapshot, Error, IoOp, Result};

use crate::disk::DiskSpine;
use crate::engine::{QueryOutcome, ServeIndex};
use crate::generalized::{DocMatch, GeneralizedSpine};
use crate::journal::{self, JournalEvent, JournalKind, JOURNAL_FILE};
use crate::manifest::{Manifest, SegmentEntry};
use crate::observe::{MergeObserver, MergePhase, MergeTimes, NoMergeObserver};
use crate::ops::{FallibleSpineOps, SpineOps};
use crate::trace::QueryTrace;

const MANIFEST_FILE: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";

/// Wall-clock milliseconds since the Unix epoch, for journal timestamps.
fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// A shared, countable I/O-operation budget for crash injection.
///
/// Unarmed gates count operations (so a harness can measure how many I/O
/// ops a workload performs); armed gates additionally fail — permanently,
/// like a crashed process — every operation from a chosen index on. One
/// gate is shared by a store's page devices and its file-level manifest
/// and sidecar operations, so the budget enumerates *every* point a real
/// crash could hit.
#[derive(Clone, Default)]
pub struct IoGate {
    inner: Arc<GateInner>,
}

#[derive(Default)]
struct GateInner {
    ops: AtomicU64,
    /// Fail every op with index >= `fail_from`, when armed.
    fail_from: AtomicU64,
    armed: AtomicBool,
}

impl IoGate {
    /// A counting-only gate: never fails.
    pub fn unarmed() -> Self {
        Self::default()
    }

    /// A gate that lets `budget` operations through and then fails every
    /// operation, permanently — the store is "crashed" from that point.
    pub fn armed(budget: u64) -> Self {
        let g = Self::default();
        g.inner.fail_from.store(budget, Ordering::Relaxed);
        g.inner.armed.store(true, Ordering::Relaxed);
        g
    }

    /// Operations charged so far (failed attempts count too).
    pub fn ops(&self) -> u64 {
        self.inner.ops.load(Ordering::Relaxed)
    }

    fn charge(&self, op: IoOp) -> Result<()> {
        let k = self.inner.ops.fetch_add(1, Ordering::Relaxed);
        if self.inner.armed.load(Ordering::Relaxed)
            && k >= self.inner.fail_from.load(Ordering::Relaxed)
        {
            return Err(Error::io(
                std::io::Error::other(format!("injected segment-store crash at I/O op {k}")),
                op,
                None,
            ));
        }
        Ok(())
    }
}

/// Charge an optional gate.
fn charge(gate: &Option<IoGate>, op: IoOp) -> Result<()> {
    match gate {
        Some(g) => g.charge(op),
        None => Ok(()),
    }
}

/// A [`PageDevice`] that charges every read, write, and sync to an
/// [`IoGate`] before forwarding to the wrapped device.
struct GatedDevice<D: PageDevice> {
    inner: D,
    gate: Option<IoGate>,
}

impl<D: PageDevice> PageDevice for GatedDevice<D> {
    fn read_page(&mut self, id: u32, buf: &mut [u8]) -> Result<()> {
        charge(&self.gate, IoOp::Read)?;
        self.inner.read_page(id, buf)
    }

    fn write_page(&mut self, id: u32, buf: &[u8]) -> Result<()> {
        charge(&self.gate, IoOp::Write)?;
        self.inner.write_page(id, buf)
    }

    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    fn sync(&mut self) -> Result<()> {
        charge(&self.gate, IoOp::Sync)?;
        self.inner.sync()
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
}

/// Tuning knobs for a [`SegmentedSpine`].
#[derive(Clone)]
pub struct SegmentConfig {
    /// Seal the memtable once its concatenation (documents plus
    /// separators) reaches this many symbols.
    pub memtable_max_symbols: usize,
    /// Buffer-pool pages per sealed segment.
    pub pool_pages: usize,
    /// The background merger compacts once the segment count reaches this,
    /// or any tombstone is outstanding.
    pub merge_min_segments: usize,
    /// Crash-injection gate charged on every I/O operation. `None` in
    /// production.
    pub gate: Option<IoGate>,
    /// Buffer-pool frames to pin per sealed segment at open time, covering
    /// the upstream backbone-prefix pages (the paper's Figure 8 skew:
    /// links concentrate there, so the occurrence scan of every query
    /// re-reads them). Pinned pages survive full-backbone scans; 0
    /// disables pinning. Must stay below `pool_pages` — the pool refuses
    /// to pin its last evictable frame regardless.
    pub hot_pin_pages: usize,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            memtable_max_symbols: 1 << 14,
            pool_pages: 16,
            merge_min_segments: 4,
            gate: None,
            hot_pin_pages: 4,
        }
    }
}

/// Point-in-time observability snapshot (the gauge values, as one value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentsSnapshot {
    /// Last committed manifest epoch.
    pub epoch: u64,
    /// Live sealed segments.
    pub segments: usize,
    /// Outstanding tombstones (sealed documents retired but not merged
    /// away).
    pub tombstones: usize,
    /// Live (unretired) memtable documents.
    pub memtable_docs: usize,
    /// Memtable concatenation size, separators included.
    pub memtable_symbols: usize,
    /// Live documents across memtable and segments.
    pub live_docs: usize,
    /// Files recovery found that no committed manifest references.
    pub orphans: usize,
    /// How much work a merge would retire: surplus segments plus
    /// tombstones.
    pub merge_backlog: usize,
    /// Memtable seals performed by this instance.
    pub seals: u64,
    /// Merges committed by this instance.
    pub merges: u64,
}

/// One immutable sealed segment: a reopened [`DiskSpine`] plus the
/// document table that maps its concatenation offsets to global ids.
struct Segment {
    id: u64,
    doc_ids: Vec<u64>,
    doc_lens: Vec<u64>,
    /// Concatenation starts with a trailing sentinel (see
    /// [`SegmentEntry::starts`]).
    starts: Vec<usize>,
    index: DiskSpine,
}

impl Segment {
    fn entry(&self) -> SegmentEntry {
        SegmentEntry { id: self.id, doc_ids: self.doc_ids.clone(), doc_lens: self.doc_lens.clone() }
    }

    /// Map a concatenation offset to `(global doc id, in-document offset)`.
    fn localize(&self, offset: usize) -> (u64, usize) {
        let d = match self.starts[..self.doc_ids.len()].binary_search(&offset) {
            Ok(d) => d,
            Err(i) => i - 1,
        };
        (self.doc_ids[d], offset - self.starts[d])
    }

    /// Reconstruct document `i`'s codes from the index itself (the sealed
    /// layout keeps no separate copy of the text — `text[p]` is the
    /// vertebra leaving backbone node `p`).
    fn doc_codes(&self, i: usize) -> Result<Vec<Code>> {
        let start = self.starts[i];
        let len = self.doc_lens[i] as usize;
        let mut codes = Vec::with_capacity(len);
        for p in start..start + len {
            let c = self
                .index
                .try_vertebra_out(p as crate::node::NodeId)?
                .ok_or_else(|| Error::Parse("segment text shorter than its doc table".into()))?;
            codes.push(c);
        }
        Ok(codes)
    }
}

/// The mutable head of the LSM. Replaced wholesale (fresh `Arc`) at seal,
/// so snapshots taken before a seal keep reading the old, now-frozen
/// memtable.
#[derive(Default)]
struct Memtable {
    state: RwLock<MemtableState>,
}

struct MemtableState {
    index: GeneralizedSpine,
    /// Global id of each memtable document, parallel to the index's local
    /// document numbering.
    doc_ids: Vec<u64>,
    /// Raw document codes, kept so sealing need not reconstruct them.
    codes: Vec<Vec<Code>>,
    /// Volatile retirement flags. Kept here (not in the inner
    /// [`GeneralizedSpine`]) so snapshots can capture them by value —
    /// retiring a memtable document must not change answers under
    /// already-taken snapshots.
    retired: Vec<bool>,
    /// Concatenation length, separators included.
    symbols: usize,
}

impl Default for MemtableState {
    fn default() -> Self {
        // The alphabet is patched in by `Memtable::new`; `Default` exists
        // only to satisfy the derive above.
        MemtableState {
            index: GeneralizedSpine::new(Alphabet::bytes()),
            doc_ids: Vec::new(),
            codes: Vec::new(),
            retired: Vec::new(),
            symbols: 0,
        }
    }
}

impl Memtable {
    fn new(alphabet: Alphabet) -> Self {
        Memtable {
            state: RwLock::new(MemtableState {
                index: GeneralizedSpine::new(alphabet),
                ..MemtableState::default()
            }),
        }
    }
}

/// Everything guarded by the commit lock. `Arc`ed members are replaced,
/// never mutated, so snapshot holders stay consistent.
struct Inner {
    memtable: Arc<Memtable>,
    segments: Arc<Vec<Arc<Segment>>>,
    tombstones: Arc<BTreeSet<u64>>,
    epoch: u64,
    next_doc: u64,
    next_segment: u64,
    orphans: Vec<PathBuf>,
}

/// Gauge backing store — updated under the commit lock, read lock-free by
/// telemetry closures.
#[derive(Default)]
struct SegStats {
    epoch: AtomicU64,
    segments: AtomicU64,
    tombstones: AtomicU64,
    memtable_docs: AtomicU64,
    memtable_symbols: AtomicU64,
    live_docs: AtomicU64,
    orphans: AtomicU64,
    merge_backlog: AtomicU64,
    seals: AtomicU64,
    merges: AtomicU64,
    merge_failures: AtomicU64,
    hot_pinned: AtomicU64,
}

/// A consistent read view: one manifest epoch's segment list and
/// tombstones plus a frozen memtable prefix.
struct Snapshot {
    memtable: Arc<Memtable>,
    /// Memtable documents visible to this snapshot.
    mem_docs: usize,
    /// Memtable concatenation length at snapshot time; matches ending
    /// beyond it were added later and are invisible.
    mem_len: usize,
    /// Retired flags at snapshot time, one per visible document.
    mem_retired: Vec<bool>,
    segments: Arc<Vec<Arc<Segment>>>,
    tombstones: Arc<BTreeSet<u64>>,
}

/// The crash-safe mutable document collection. See the module docs for
/// the design; see [`ServeIndex`] for how it plugs into the concurrent
/// [`QueryEngine`](crate::QueryEngine) unchanged.
pub struct SegmentedSpine {
    alphabet: Alphabet,
    dir: PathBuf,
    cfg: SegmentConfig,
    inner: Mutex<Inner>,
    stats: Arc<SegStats>,
    /// `segments.merge_duration` histogram, set by [`Self::attach_telemetry`].
    merge_hist: Mutex<Option<Arc<Histogram>>>,
}

impl SegmentedSpine {
    /// Initialize a new store in `dir` (created if absent) and commit its
    /// empty manifest. Refuses to clobber an existing store.
    pub fn create(alphabet: Alphabet, dir: impl AsRef<Path>, cfg: SegmentConfig) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| Error::io(e, IoOp::Meta, None))?;
        if dir.join(MANIFEST_FILE).exists() {
            return Err(Error::Unsupported("creating a segment store over an existing one"));
        }
        let s = SegmentedSpine {
            inner: Mutex::new(Inner {
                memtable: Arc::new(Memtable::new(alphabet.clone())),
                segments: Arc::new(Vec::new()),
                tombstones: Arc::new(BTreeSet::new()),
                epoch: 0,
                next_doc: 0,
                next_segment: 0,
                orphans: Vec::new(),
            }),
            alphabet,
            dir,
            cfg,
            stats: Arc::new(SegStats::default()),
            merge_hist: Mutex::new(None),
        };
        s.commit_manifest(&Manifest::default())?;
        s.refresh_stats(&s.inner.lock());
        Ok(s)
    }

    /// Recover a store from its last committed manifest. Memtable contents
    /// at crash time are gone (by design — they were never durable);
    /// every committed segment reopens through its sidecar. Files in `dir`
    /// that the manifest does not reference are recorded as orphans
    /// ([`Self::orphan_count`]) and left untouched for inspection.
    ///
    /// The lifecycle journal is replayed and cross-checked: a torn final
    /// record (a crash mid-append) is truncated away, but a journal whose
    /// maximum epoch *exceeds* the recovered manifest's is corruption —
    /// events are only ever appended after their commit is durable, so the
    /// journal can trail the manifest, never lead it. Recovery itself then
    /// appends a [`JournalKind::Recover`] event.
    pub fn open(alphabet: Alphabet, dir: impl AsRef<Path>, cfg: SegmentConfig) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        charge(&cfg.gate, IoOp::Read)?;
        let bytes =
            fs::read(dir.join(MANIFEST_FILE)).map_err(|e| Error::io(e, IoOp::Read, None))?;
        let m = Manifest::decode(&bytes)?;
        replay_journal(&dir, &cfg, m.epoch)?;
        let mut segments = Vec::with_capacity(m.segments.len());
        for e in &m.segments {
            segments.push(Arc::new(open_segment(&dir, e, &cfg)?));
        }
        let orphans = scan_orphans(&dir, &m)?;
        let sealed_live: u64 = m
            .segments
            .iter()
            .map(|e| e.doc_ids.iter().filter(|d| !m.tombstones.contains(d)).count() as u64)
            .sum();
        let recover = JournalEvent {
            kind: JournalKind::Recover,
            epoch: m.epoch,
            unix_ms: unix_ms(),
            docs: sealed_live,
            aux: orphans.len() as u64,
            inputs: Vec::new(),
            outputs: m.segments.iter().map(|e| e.id).collect(),
            phase_nanos: [0; MergePhase::COUNT],
        };
        let s = SegmentedSpine {
            inner: Mutex::new(Inner {
                memtable: Arc::new(Memtable::new(alphabet.clone())),
                segments: Arc::new(segments),
                tombstones: Arc::new(m.tombstones.iter().copied().collect()),
                epoch: m.epoch,
                next_doc: m.next_doc,
                next_segment: m.next_segment,
                orphans,
            }),
            alphabet,
            dir,
            cfg,
            stats: Arc::new(SegStats::default()),
            merge_hist: Mutex::new(None),
        };
        s.append_journal(&recover)?;
        s.refresh_stats(&s.inner.lock());
        Ok(s)
    }

    /// [`Self::open`] when a manifest exists, [`Self::create`] otherwise.
    pub fn open_or_create(
        alphabet: Alphabet,
        dir: impl AsRef<Path>,
        cfg: SegmentConfig,
    ) -> Result<Self> {
        if dir.as_ref().join(MANIFEST_FILE).exists() {
            Self::open(alphabet, dir, cfg)
        } else {
            Self::create(alphabet, dir, cfg)
        }
    }

    /// The store's alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Append one document; returns its global id. The document is
    /// volatile (memtable-only) until the next seal commits it. May seal
    /// synchronously when the memtable reaches the configured threshold —
    /// a seal failure leaves the document in the memtable and the durable
    /// state untouched.
    pub fn add_document(&self, doc: &[Code]) -> Result<u64> {
        if let Some(pos) = doc.iter().position(|&c| c as usize >= self.alphabet.size()) {
            return Err(Error::InvalidSymbol { byte: doc[pos], pos });
        }
        let mut inner = self.inner.lock();
        let id = inner.next_doc;
        let symbols = {
            let mut st = inner.memtable.state.write();
            st.index.add_document(doc)?;
            st.doc_ids.push(id);
            st.codes.push(doc.to_vec());
            st.retired.push(false);
            st.symbols += doc.len() + 1;
            st.symbols
        };
        inner.next_doc = id + 1;
        let sealed = if symbols >= self.cfg.memtable_max_symbols {
            self.seal_locked(&mut inner, &mut NoMergeObserver).map(|_| ())
        } else {
            Ok(())
        };
        self.refresh_stats(&inner);
        sealed.map(|()| id)
    }

    /// Retire document `doc` everywhere. Sealed documents get a durable
    /// manifest tombstone (one atomic commit); memtable documents get a
    /// volatile flag (the document is volatile too — a crash forgets the
    /// pair together, never one side). Returns `Ok(true)` if this call
    /// retired it, `Ok(false)` if it was already retired (possibly merged
    /// away since), and [`Error::UnknownDocument`] for an id never
    /// assigned — the same semantics as
    /// [`GeneralizedSpine::retire_document`].
    pub fn retire_document(&self, doc: u64) -> Result<bool> {
        let mut inner = self.inner.lock();
        if doc >= inner.next_doc {
            return Err(Error::UnknownDocument { doc });
        }
        if inner.tombstones.contains(&doc) {
            return Ok(false);
        }
        let mem_hit = {
            let mut st = inner.memtable.state.write();
            match st.doc_ids.iter().position(|&d| d == doc) {
                Some(local) => {
                    if st.retired[local] {
                        return Ok(false);
                    }
                    st.retired[local] = true;
                    true
                }
                None => false,
            }
        };
        if mem_hit {
            self.refresh_stats(&inner);
            return Ok(true);
        }
        let sealed = inner.segments.iter().any(|s| s.doc_ids.binary_search(&doc).is_ok());
        if !sealed {
            // Assigned once, but already retired and compacted away (or
            // lost with a pre-crash memtable): idempotent no-op.
            return Ok(false);
        }
        let mut tombstones: BTreeSet<u64> = (*inner.tombstones).clone();
        tombstones.insert(doc);
        let manifest = Manifest {
            epoch: inner.epoch + 1,
            next_doc: inner.next_doc,
            next_segment: inner.next_segment,
            segments: inner.segments.iter().map(|s| s.entry()).collect(),
            tombstones: tombstones.iter().copied().collect(),
        };
        self.commit_manifest(&manifest)?;
        inner.epoch = manifest.epoch;
        inner.tombstones = Arc::new(tombstones);
        self.append_journal(&JournalEvent {
            kind: JournalKind::Retire,
            epoch: manifest.epoch,
            unix_ms: unix_ms(),
            docs: doc,
            aux: 0,
            inputs: Vec::new(),
            outputs: Vec::new(),
            phase_nanos: [0; MergePhase::COUNT],
        })?;
        self.refresh_stats(&inner);
        Ok(true)
    }

    /// Seal the memtable now regardless of size. Returns whether a
    /// segment was created (an empty or fully-retired memtable seals to
    /// nothing).
    pub fn force_seal(&self) -> Result<bool> {
        self.force_seal_observed(&mut NoMergeObserver)
    }

    /// [`Self::force_seal`] with phase timings teed to `obs` on top of the
    /// internal accounting (the journal record gets them either way).
    pub fn force_seal_observed<O: MergeObserver>(&self, obs: &mut O) -> Result<bool> {
        let mut inner = self.inner.lock();
        let sealed = self.seal_locked(&mut inner, obs);
        self.refresh_stats(&inner);
        sealed
    }

    /// Compact every sealed segment (dropping tombstoned documents) into
    /// one, commit, and delete the inputs. Returns `Ok(false)` when there
    /// is nothing worth merging. The memtable is untouched. Snapshots
    /// taken before the merge keep answering from the old segments: their
    /// file handles stay open, so even the input deletion cannot pull
    /// pages out from under them.
    pub fn merge_once(&self) -> Result<bool> {
        self.merge_once_observed(&mut NoMergeObserver)
    }

    /// [`Self::merge_once`] with phase timings teed to `obs` on top of the
    /// internal accounting (journal record and `segments.merge_duration`
    /// histogram get them either way).
    pub fn merge_once_observed<O: MergeObserver>(&self, obs: &mut O) -> Result<bool> {
        let mut inner = self.inner.lock();
        let any_tombstone_sealed = !inner.tombstones.is_empty();
        if inner.segments.len() < 2 && !any_tombstone_sealed {
            return Ok(false);
        }
        let r = self.merge_locked(&mut inner, obs);
        if r.is_err() {
            self.stats.merge_failures.fetch_add(1, Ordering::Relaxed);
        }
        self.refresh_stats(&inner);
        r
    }

    fn merge_locked<O: MergeObserver>(&self, inner: &mut Inner, obs: &mut O) -> Result<bool> {
        let mut times = MergeTimes::default();
        let t = Instant::now();
        let mut docs: Vec<(u64, Vec<Code>)> = Vec::new();
        for seg in inner.segments.iter() {
            for (i, &d) in seg.doc_ids.iter().enumerate() {
                if inner.tombstones.contains(&d) {
                    continue;
                }
                docs.push((d, seg.doc_codes(i)?));
            }
        }
        docs.sort_by_key(|&(id, _)| id);
        phase(&mut times, obs, MergePhase::Collect, t);
        let dropped_tombstones = inner.tombstones.len() as u64;
        let old: Vec<Arc<Segment>> = (*inner.segments).clone();
        let mut segments: Vec<Arc<Segment>> = Vec::new();
        let mut next_segment = inner.next_segment;
        let t = Instant::now();
        if !docs.is_empty() {
            let seg = self.build_segment(next_segment, &docs)?;
            next_segment += 1;
            segments.push(Arc::new(seg));
        }
        phase(&mut times, obs, MergePhase::Build, t);
        let manifest = Manifest {
            epoch: inner.epoch + 1,
            next_doc: inner.next_doc,
            next_segment,
            segments: segments.iter().map(|s| s.entry()).collect(),
            // Every tombstoned sealed document was just compacted away.
            tombstones: Vec::new(),
        };
        let t = Instant::now();
        self.commit_manifest(&manifest)?;
        phase(&mut times, obs, MergePhase::Commit, t);
        inner.epoch = manifest.epoch;
        inner.next_segment = next_segment;
        inner.segments = Arc::new(segments);
        inner.tombstones = Arc::new(BTreeSet::new());
        self.stats.merges.fetch_add(1, Ordering::Relaxed);
        // The commit made the inputs unreachable; delete them. A failure
        // here cannot un-commit — the files just linger as garbage a
        // future recovery will flag as orphans.
        let t = Instant::now();
        for seg in &old {
            charge(&self.cfg.gate, IoOp::Meta)?;
            fs::remove_file(self.pages_path(seg.id)).map_err(|e| Error::io(e, IoOp::Meta, None))?;
            charge(&self.cfg.gate, IoOp::Meta)?;
            fs::remove_file(self.meta_path(seg.id)).map_err(|e| Error::io(e, IoOp::Meta, None))?;
        }
        phase(&mut times, obs, MergePhase::Cleanup, t);
        if let Some(h) = self.merge_hist.lock().as_ref() {
            h.record_value(times.total_nanos());
        }
        self.append_journal(&JournalEvent {
            kind: JournalKind::Merge,
            epoch: manifest.epoch,
            unix_ms: unix_ms(),
            docs: docs.len() as u64,
            aux: dropped_tombstones,
            inputs: old.iter().map(|s| s.id).collect(),
            outputs: inner.segments.iter().map(|s| s.id).collect(),
            phase_nanos: times.phase_nanos,
        })?;
        Ok(true)
    }

    /// Seal the memtable's live documents into a new segment and commit.
    /// No-op (fresh memtable, no commit) when nothing is live.
    fn seal_locked<O: MergeObserver>(&self, inner: &mut Inner, obs: &mut O) -> Result<bool> {
        let docs: Vec<(u64, Vec<Code>)> = {
            let st = inner.memtable.state.read();
            if st.doc_ids.is_empty() {
                return Ok(false);
            }
            st.doc_ids
                .iter()
                .zip(&st.codes)
                .zip(&st.retired)
                .filter(|&(_, &r)| !r)
                .map(|((&id, codes), _)| (id, codes.clone()))
                .collect()
        };
        if docs.is_empty() {
            // Everything was retired before sealing: nothing to persist,
            // and nothing durable referenced those ids. Just reset.
            inner.memtable = Arc::new(Memtable::new(self.alphabet.clone()));
            return Ok(false);
        }
        let mut times = MergeTimes::default();
        let id = inner.next_segment;
        let t = Instant::now();
        let seg = self.build_segment(id, &docs)?;
        phase(&mut times, obs, MergePhase::Build, t);
        let mut segments: Vec<Arc<Segment>> = (*inner.segments).clone();
        segments.push(Arc::new(seg));
        let manifest = Manifest {
            epoch: inner.epoch + 1,
            next_doc: inner.next_doc,
            next_segment: id + 1,
            segments: segments.iter().map(|s| s.entry()).collect(),
            tombstones: inner.tombstones.iter().copied().collect(),
        };
        let t = Instant::now();
        self.commit_manifest(&manifest)?;
        phase(&mut times, obs, MergePhase::Commit, t);
        inner.epoch = manifest.epoch;
        inner.next_segment = id + 1;
        inner.segments = Arc::new(segments);
        inner.memtable = Arc::new(Memtable::new(self.alphabet.clone()));
        self.stats.seals.fetch_add(1, Ordering::Relaxed);
        self.append_journal(&JournalEvent {
            kind: JournalKind::Seal,
            epoch: manifest.epoch,
            unix_ms: unix_ms(),
            docs: docs.len() as u64,
            aux: 0,
            inputs: Vec::new(),
            outputs: vec![id],
            phase_nanos: times.phase_nanos,
        })?;
        Ok(true)
    }

    /// Write segment `id`'s pages file (sealed layout v2, synced) and
    /// sidecar. The files are not durable *state* until a manifest commit
    /// references them — a crash before that leaves them as orphans.
    fn build_segment(&self, id: u64, docs: &[(u64, Vec<Code>)]) -> Result<Segment> {
        let sep = self.alphabet.separator();
        let mut text = Vec::new();
        for (_, codes) in docs {
            text.extend_from_slice(codes);
            text.push(sep);
        }
        charge(&self.cfg.gate, IoOp::Write)?;
        let dev = FileDevice::create(self.pages_path(id), false)?;
        let dev = GatedDevice { inner: dev, gate: self.cfg.gate.clone() };
        let index = DiskSpine::build_sealed(
            self.alphabet.clone(),
            &text,
            Box::new(dev),
            self.cfg.pool_pages,
            Box::<Lru>::default(),
        )?;
        let mut meta = Vec::new();
        index.write_meta(&mut meta)?;
        charge(&self.cfg.gate, IoOp::Meta)?;
        let mut f =
            fs::File::create(self.meta_path(id)).map_err(|e| Error::io(e, IoOp::Meta, None))?;
        charge(&self.cfg.gate, IoOp::Write)?;
        f.write_all(&meta).map_err(|e| Error::io(e, IoOp::Write, None))?;
        charge(&self.cfg.gate, IoOp::Sync)?;
        f.sync_all().map_err(|e| Error::io(e, IoOp::Sync, None))?;
        if self.cfg.hot_pin_pages > 0 {
            index.pin_hot_prefix(self.cfg.hot_pin_pages)?;
        }
        let doc_ids: Vec<u64> = docs.iter().map(|&(d, _)| d).collect();
        let doc_lens: Vec<u64> = docs.iter().map(|(_, c)| c.len() as u64).collect();
        let entry = SegmentEntry { id, doc_ids, doc_lens };
        let starts = entry.starts();
        Ok(Segment { id, doc_ids: entry.doc_ids, doc_lens: entry.doc_lens, starts, index })
    }

    /// The atomic commit: temp file, fsync, rename, directory fsync.
    fn commit_manifest(&self, m: &Manifest) -> Result<()> {
        let gate = &self.cfg.gate;
        let bytes = m.encode();
        let tmp = self.dir.join(MANIFEST_TMP);
        charge(gate, IoOp::Write)?;
        let mut f = fs::File::create(&tmp).map_err(|e| Error::io(e, IoOp::Write, None))?;
        charge(gate, IoOp::Write)?;
        f.write_all(&bytes).map_err(|e| Error::io(e, IoOp::Write, None))?;
        charge(gate, IoOp::Sync)?;
        f.sync_all().map_err(|e| Error::io(e, IoOp::Sync, None))?;
        drop(f);
        charge(gate, IoOp::Meta)?;
        fs::rename(&tmp, self.dir.join(MANIFEST_FILE))
            .map_err(|e| Error::io(e, IoOp::Meta, None))?;
        // The rename is not durable until the directory itself is synced.
        charge(gate, IoOp::Sync)?;
        let d = fs::File::open(&self.dir).map_err(|e| Error::io(e, IoOp::Sync, None))?;
        d.sync_all().map_err(|e| Error::io(e, IoOp::Sync, None))?;
        Ok(())
    }

    fn pages_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("seg-{id}.pages"))
    }

    fn meta_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("seg-{id}.meta"))
    }

    /// Last committed manifest epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Files recovery found that no committed manifest references —
    /// evidence of a crash mid-commit. Non-zero turns the serving
    /// `/health` endpoint degraded until an operator inspects and
    /// [`Self::cleanup_orphans`] clears them.
    pub fn orphan_count(&self) -> usize {
        self.inner.lock().orphans.len()
    }

    /// Delete the orphan files recorded at recovery. Returns how many were
    /// removed.
    pub fn cleanup_orphans(&self) -> Result<usize> {
        let mut inner = self.inner.lock();
        let mut removed = 0;
        while let Some(p) = inner.orphans.last().cloned() {
            charge(&self.cfg.gate, IoOp::Meta)?;
            match fs::remove_file(&p) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(Error::io(e, IoOp::Meta, None)),
            }
            inner.orphans.pop();
            removed += 1;
        }
        if removed > 0 {
            self.append_journal(&JournalEvent {
                kind: JournalKind::OrphanCleanup,
                epoch: inner.epoch,
                unix_ms: unix_ms(),
                docs: removed as u64,
                aux: 0,
                inputs: Vec::new(),
                outputs: Vec::new(),
                phase_nanos: [0; MergePhase::COUNT],
            })?;
        }
        self.refresh_stats(&inner);
        Ok(removed)
    }

    /// Append one event to `JOURNAL.log` with the manifest's fsync
    /// discipline (write, then `fsync` the file). Called strictly *after*
    /// the commit the event describes is durable, so the journal can only
    /// ever trail the manifest.
    fn append_journal(&self, ev: &JournalEvent) -> Result<()> {
        let gate = &self.cfg.gate;
        let bytes = ev.encode();
        charge(gate, IoOp::Meta)?;
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(JOURNAL_FILE))
            .map_err(|e| Error::io(e, IoOp::Meta, None))?;
        charge(gate, IoOp::Write)?;
        f.write_all(&bytes).map_err(|e| Error::io(e, IoOp::Write, None))?;
        charge(gate, IoOp::Sync)?;
        f.sync_all().map_err(|e| Error::io(e, IoOp::Sync, None))?;
        Ok(())
    }

    /// Path of the lifecycle journal file.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join(JOURNAL_FILE)
    }

    /// The last `n` lifecycle journal events, oldest first. Lenient: a
    /// torn tail (crash mid-append, not yet truncated by recovery) is
    /// skipped, matching replay semantics.
    pub fn recent_journal(&self, n: usize) -> Result<Vec<JournalEvent>> {
        let p = self.journal_path();
        if !p.exists() {
            return Ok(Vec::new());
        }
        charge(&self.cfg.gate, IoOp::Read)?;
        let bytes = fs::read(&p).map_err(|e| Error::io(e, IoOp::Read, None))?;
        let (mut events, _) = journal::replay(&bytes);
        if events.len() > n {
            events.drain(..events.len() - n);
        }
        Ok(events)
    }

    /// Sorted global ids of every live document (memtable and sealed).
    pub fn live_doc_ids(&self) -> Vec<u64> {
        let snap = self.snapshot();
        let mut ids = Vec::new();
        {
            let st = snap.memtable.state.read();
            for (local, &id) in st.doc_ids.iter().take(snap.mem_docs).enumerate() {
                if !snap.mem_retired[local] && !snap.tombstones.contains(&id) {
                    ids.push(id);
                }
            }
        }
        for seg in snap.segments.iter() {
            for &id in &seg.doc_ids {
                if !snap.tombstones.contains(&id) {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        ids
    }

    /// The codes of live document `doc`, or `None` if it is retired or was
    /// never assigned.
    pub fn document(&self, doc: u64) -> Result<Option<Vec<Code>>> {
        let snap = self.snapshot();
        if snap.tombstones.contains(&doc) {
            return Ok(None);
        }
        {
            let st = snap.memtable.state.read();
            if let Some(local) = st.doc_ids.iter().take(snap.mem_docs).position(|&d| d == doc) {
                if snap.mem_retired[local] {
                    return Ok(None);
                }
                return Ok(Some(st.codes[local].clone()));
            }
        }
        for seg in snap.segments.iter() {
            if let Ok(i) = seg.doc_ids.binary_search(&doc) {
                return Ok(Some(seg.doc_codes(i)?));
            }
        }
        Ok(None)
    }

    /// All occurrences of `pattern` across live documents, as
    /// `(global doc id, offset)` matches ordered by (doc, offset).
    pub fn try_find_all(&self, pattern: &[Code]) -> Result<Vec<DocMatch>> {
        match self.answer_patterns(&[pattern]).pop().expect("one outcome per pattern") {
            QueryOutcome::DoneDocs(ms) => Ok(ms),
            QueryOutcome::Failed(e) => {
                Err(Error::Io { source: std::io::Error::other(e), ctx: None })
            }
            other => unreachable!("segmented answer is DoneDocs or Failed, got {other:?}"),
        }
    }

    /// Per-component EXPLAIN: the memtable's trace plus each sealed
    /// segment's, labeled. The composite has no single backbone walk to
    /// trace, so observability keeps the component structure visible.
    pub fn explain(&self, pattern: &[Code]) -> Vec<(String, QueryTrace)> {
        let snap = self.snapshot();
        let mut out = Vec::with_capacity(1 + snap.segments.len());
        {
            let st = snap.memtable.state.read();
            out.push(("memtable".to_string(), crate::trace::explain(&st.index, pattern)));
        }
        for seg in snap.segments.iter() {
            out.push((format!("seg-{}", seg.id), seg.index.explain(pattern)));
        }
        out
    }

    /// `(segment id, sealed on-disk pages)` for every live segment,
    /// oldest first. Backs the per-segment `segments.pages` labeled
    /// gauges on `/metrics`; an id that has since been merged away simply
    /// stops appearing here.
    pub fn segment_pages(&self) -> Vec<(u64, u64)> {
        self.snapshot().segments.iter().map(|s| (s.id, s.index.file_pages().unwrap_or(0))).collect()
    }

    /// The gauge values as one consistent snapshot.
    pub fn stats(&self) -> SegmentsSnapshot {
        let s = &self.stats;
        SegmentsSnapshot {
            epoch: s.epoch.load(Ordering::Relaxed),
            segments: s.segments.load(Ordering::Relaxed) as usize,
            tombstones: s.tombstones.load(Ordering::Relaxed) as usize,
            memtable_docs: s.memtable_docs.load(Ordering::Relaxed) as usize,
            memtable_symbols: s.memtable_symbols.load(Ordering::Relaxed) as usize,
            live_docs: s.live_docs.load(Ordering::Relaxed) as usize,
            orphans: s.orphans.load(Ordering::Relaxed) as usize,
            merge_backlog: s.merge_backlog.load(Ordering::Relaxed) as usize,
            seals: s.seals.load(Ordering::Relaxed),
            merges: s.merges.load(Ordering::Relaxed),
        }
    }

    /// Register the store's gauges (`segments.count`,
    /// `segments.merge_backlog`, `segments.tombstones`, ...) on `registry`
    /// for the `/metrics` exporters.
    pub fn attach_telemetry(&self, registry: &MetricsRegistry) {
        let g = |s: &Arc<SegStats>, f: fn(&SegStats) -> &AtomicU64| {
            let s = s.clone();
            move || f(&s).load(Ordering::Relaxed)
        };
        registry.gauge("segments.count", g(&self.stats, |s| &s.segments));
        registry.gauge("segments.tombstones", g(&self.stats, |s| &s.tombstones));
        registry.gauge("segments.merge_backlog", g(&self.stats, |s| &s.merge_backlog));
        registry.gauge("segments.epoch", g(&self.stats, |s| &s.epoch));
        registry.gauge("segments.memtable_docs", g(&self.stats, |s| &s.memtable_docs));
        registry.gauge("segments.memtable_symbols", g(&self.stats, |s| &s.memtable_symbols));
        registry.gauge("segments.live_docs", g(&self.stats, |s| &s.live_docs));
        registry.gauge("segments.orphans", g(&self.stats, |s| &s.orphans));
        registry.gauge("segments.seals", g(&self.stats, |s| &s.seals));
        registry.gauge("segments.merges", g(&self.stats, |s| &s.merges));
        registry.gauge("segments.merge_failures", g(&self.stats, |s| &s.merge_failures));
        registry.gauge("segments.hot_pinned", g(&self.stats, |s| &s.hot_pinned));
        // Merges were previously count-only; the histogram makes a slow
        // merge visible (recorded as total wall nanos across phases).
        *self.merge_hist.lock() = Some(registry.histogram("segments.merge_duration"));
    }

    fn refresh_stats(&self, inner: &Inner) {
        let (mem_docs, mem_symbols, mem_live) = {
            let st = inner.memtable.state.read();
            let live = st.retired.iter().filter(|&&r| !r).count();
            (st.doc_ids.len(), st.symbols, live)
        };
        let sealed_live: usize = inner
            .segments
            .iter()
            .map(|s| s.doc_ids.iter().filter(|d| !inner.tombstones.contains(d)).count())
            .sum();
        let s = &self.stats;
        s.epoch.store(inner.epoch, Ordering::Relaxed);
        s.segments.store(inner.segments.len() as u64, Ordering::Relaxed);
        s.tombstones.store(inner.tombstones.len() as u64, Ordering::Relaxed);
        s.memtable_docs.store(mem_docs as u64, Ordering::Relaxed);
        s.memtable_symbols.store(mem_symbols as u64, Ordering::Relaxed);
        s.live_docs.store((mem_live + sealed_live) as u64, Ordering::Relaxed);
        s.orphans.store(inner.orphans.len() as u64, Ordering::Relaxed);
        let backlog = inner.segments.len().saturating_sub(1) + inner.tombstones.len();
        s.merge_backlog.store(backlog as u64, Ordering::Relaxed);
        let pinned: usize = inner.segments.iter().map(|sg| sg.index.pinned_pages()).sum();
        s.hot_pinned.store(pinned as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock();
        let memtable = inner.memtable.clone();
        let segments = inner.segments.clone();
        let tombstones = inner.tombstones.clone();
        drop(inner);
        let (mem_docs, mem_len, mem_retired) = {
            let st = memtable.state.read();
            (st.doc_ids.len(), SpineOps::text_len(&st.index), st.retired.clone())
        };
        Snapshot { memtable, mem_docs, mem_len, mem_retired, segments, tombstones }
    }
}

/// Queries resolve against a snapshot, component by component: the
/// memtable and each segment run the shared single-backbone batch path
/// (locate once, one backbone scan per component), then concatenation
/// ends are localized to `(doc, offset)`, filtered through the snapshot's
/// tombstones and retired flags, and merged. Failures are per-pattern: a
/// storage fault in one segment fails the patterns it was resolving, not
/// the batch.
impl ServeIndex for SegmentedSpine {
    fn answer_patterns(&self, patterns: &[&[Code]]) -> Vec<QueryOutcome> {
        type Acc = std::result::Result<Vec<DocMatch>, String>;
        let snap = self.snapshot();
        let mut acc: Vec<Acc> = patterns.iter().map(|_| Ok(Vec::new())).collect();

        // The empty pattern occurs at every position of every live
        // document, boundaries included (the per-document analogue of the
        // single-backbone `0..=n` answer).
        let empty_answer: Option<Vec<DocMatch>> =
            patterns.iter().any(|p| p.is_empty()).then(|| {
                let mut ms = Vec::new();
                {
                    let st = snap.memtable.state.read();
                    for (local, &id) in st.doc_ids.iter().take(snap.mem_docs).enumerate() {
                        if snap.mem_retired[local] || snap.tombstones.contains(&id) {
                            continue;
                        }
                        for off in 0..=st.index.doc_len(local) {
                            ms.push(DocMatch { doc: id as usize, offset: off });
                        }
                    }
                }
                for seg in snap.segments.iter() {
                    for (i, &id) in seg.doc_ids.iter().enumerate() {
                        if snap.tombstones.contains(&id) {
                            continue;
                        }
                        for off in 0..=seg.doc_lens[i] as usize {
                            ms.push(DocMatch { doc: id as usize, offset: off });
                        }
                    }
                }
                ms
            });
        for (i, p) in patterns.iter().enumerate() {
            if p.is_empty() {
                acc[i] = Ok(empty_answer.clone().expect("computed when any pattern is empty"));
            }
        }

        // Memtable component. Ends past the snapshot's concatenation
        // length belong to documents added after the snapshot; drop them.
        {
            let st = snap.memtable.state.read();
            if snap.mem_docs > 0 {
                let outs = ServeIndex::answer_patterns(&st.index, patterns);
                for (i, out) in outs.into_iter().enumerate() {
                    if patterns[i].is_empty() {
                        continue;
                    }
                    merge_component(
                        &mut acc[i],
                        out,
                        patterns[i].len(),
                        |start| {
                            let m = st.index.localize(start);
                            if m.doc >= snap.mem_docs || snap.mem_retired[m.doc] {
                                return None;
                            }
                            let id = st.doc_ids[m.doc];
                            (!snap.tombstones.contains(&id))
                                .then_some(DocMatch { doc: id as usize, offset: m.offset })
                        },
                        snap.mem_len,
                    );
                }
            }
        }

        // Sealed segments.
        for seg in snap.segments.iter() {
            let outs = ServeIndex::answer_patterns(&seg.index, patterns);
            for (i, out) in outs.into_iter().enumerate() {
                if patterns[i].is_empty() {
                    continue;
                }
                merge_component(
                    &mut acc[i],
                    out,
                    patterns[i].len(),
                    |start| {
                        let (id, offset) = seg.localize(start);
                        (!snap.tombstones.contains(&id))
                            .then_some(DocMatch { doc: id as usize, offset })
                    },
                    usize::MAX,
                );
            }
        }

        acc.into_iter()
            .map(|r| match r {
                Ok(mut ms) => {
                    ms.sort_unstable_by_key(|m| (m.doc, m.offset));
                    QueryOutcome::DoneDocs(ms)
                }
                Err(e) => QueryOutcome::Failed(e),
            })
            .collect()
    }

    fn counters_snapshot(&self) -> CountersSnapshot {
        let snap = self.snapshot();
        let mut agg = FallibleSpineOps::ops_counters(&snap.memtable.state.read().index).snapshot();
        for seg in snap.segments.iter() {
            agg += FallibleSpineOps::ops_counters(&seg.index).snapshot();
        }
        agg
    }
}

/// Fold one component's single-backbone outcome for one pattern into the
/// per-pattern accumulator: ends → starts → localized matches, respecting
/// a visibility limit on end positions. An already-failed pattern stays
/// failed; a component failure fails the pattern.
fn merge_component(
    acc: &mut std::result::Result<Vec<DocMatch>, String>,
    out: QueryOutcome,
    plen: usize,
    mut localize: impl FnMut(usize) -> Option<DocMatch>,
    end_limit: usize,
) {
    let Ok(ms) = acc.as_mut() else { return };
    match out {
        QueryOutcome::Done(ends) => {
            for e in ends {
                let end = e as usize;
                if end > end_limit {
                    continue;
                }
                if let Some(m) = localize(end - plen) {
                    ms.push(m);
                }
            }
        }
        QueryOutcome::Failed(e) => *acc = Err(e),
        other => *acc = Err(format!("unexpected component outcome {other:?}")),
    }
}

/// Charge the wall time since `t` to phase `p` on the internal accumulator
/// (always — the journal needs it) and the caller's observer (when enabled).
fn phase<O: MergeObserver>(times: &mut MergeTimes, obs: &mut O, p: MergePhase, t: Instant) {
    let nanos = t.elapsed().as_nanos() as u64;
    times.phase(p, nanos);
    if O::ENABLED {
        obs.phase(p, nanos);
    }
}

/// Recovery's journal pass: salvage the valid record prefix (truncating a
/// torn tail in place, synced) and cross-check it against the recovered
/// manifest epoch. Events are appended only after their commit is durable,
/// so a journal *ahead* of the manifest is corruption, not a crash artifact.
fn replay_journal(dir: &Path, cfg: &SegmentConfig, manifest_epoch: u64) -> Result<()> {
    let path = dir.join(JOURNAL_FILE);
    if !path.exists() {
        return Ok(());
    }
    charge(&cfg.gate, IoOp::Read)?;
    let bytes = fs::read(&path).map_err(|e| Error::io(e, IoOp::Read, None))?;
    let (events, valid) = journal::replay(&bytes);
    if valid < bytes.len() {
        charge(&cfg.gate, IoOp::Meta)?;
        let f = fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| Error::io(e, IoOp::Meta, None))?;
        f.set_len(valid as u64).map_err(|e| Error::io(e, IoOp::Meta, None))?;
        charge(&cfg.gate, IoOp::Sync)?;
        f.sync_all().map_err(|e| Error::io(e, IoOp::Sync, None))?;
    }
    if let Some(max) = events.iter().map(|e| e.epoch).max() {
        if max > manifest_epoch {
            return Err(Error::Parse(format!(
                "journal epoch {max} is ahead of manifest epoch {manifest_epoch} \
                 (journal events are appended only after their commit is durable)"
            )));
        }
    }
    Ok(())
}

fn open_segment(dir: &Path, e: &SegmentEntry, cfg: &SegmentConfig) -> Result<Segment> {
    charge(&cfg.gate, IoOp::Meta)?;
    let meta = fs::read(dir.join(format!("seg-{}.meta", e.id)))
        .map_err(|err| Error::io(err, IoOp::Meta, None))?;
    charge(&cfg.gate, IoOp::Read)?;
    let dev = FileDevice::open(dir.join(format!("seg-{}.pages", e.id)), false)?;
    let dev = GatedDevice { inner: dev, gate: cfg.gate.clone() };
    let index = DiskSpine::reopen(
        &mut meta.as_slice(),
        Box::new(dev),
        cfg.pool_pages,
        Box::<Lru>::default(),
    )?;
    if cfg.hot_pin_pages > 0 {
        index.pin_hot_prefix(cfg.hot_pin_pages)?;
    }
    Ok(Segment {
        id: e.id,
        doc_ids: e.doc_ids.clone(),
        doc_lens: e.doc_lens.clone(),
        starts: e.starts(),
        index,
    })
}

/// Directory entries a committed manifest does not account for: segment
/// files from commits that never happened, or a `MANIFEST.tmp` from an
/// interrupted commit.
fn scan_orphans(dir: &Path, m: &Manifest) -> Result<Vec<PathBuf>> {
    let mut referenced: BTreeSet<String> = BTreeSet::new();
    for e in &m.segments {
        referenced.insert(format!("seg-{}.pages", e.id));
        referenced.insert(format!("seg-{}.meta", e.id));
    }
    let mut orphans = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| Error::io(e, IoOp::Meta, None))?;
    for entry in entries {
        let entry = entry.map_err(|e| Error::io(e, IoOp::Meta, None))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let is_segment_file =
            name.starts_with("seg-") && (name.ends_with(".pages") || name.ends_with(".meta"));
        if name == MANIFEST_TMP || (is_segment_file && !referenced.contains(&name)) {
            orphans.push(entry.path());
        }
    }
    orphans.sort();
    Ok(orphans)
}

/// Owner handle for the background merge thread; stops and joins it on
/// drop.
pub struct MergeHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MergeHandle {
    /// Signal the merger and wait for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            t.thread().unpark();
            let _ = t.join();
        }
    }
}

impl Drop for MergeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Run a compaction loop on a background thread: whenever the backlog
/// reaches the configured trigger (segment count, or any outstanding
/// tombstone), merge. Errors increment the `segments.merge_failures`
/// gauge and the loop keeps going — a failed merge leaves the store on
/// its previous committed state.
pub fn spawn_merger(store: Arc<SegmentedSpine>, interval: Duration) -> MergeHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let thread = std::thread::Builder::new()
        .name("spine-merger".into())
        .spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                let s = store.stats();
                if s.segments >= store.cfg.merge_min_segments || s.tombstones > 0 {
                    let _ = store.merge_once();
                }
                std::thread::park_timeout(interval);
            }
        })
        .expect("spawn spine-merger thread");
    MergeHandle { stop, thread: Some(thread) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dna() -> Alphabet {
        Alphabet::dna()
    }

    fn enc(a: &Alphabet, s: &str) -> Vec<Code> {
        a.encode(s.as_bytes()).unwrap()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("spine-segments-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn matches_of(s: &SegmentedSpine, a: &Alphabet, pat: &str) -> Vec<(usize, usize)> {
        s.try_find_all(&enc(a, pat)).unwrap().into_iter().map(|m| (m.doc, m.offset)).collect()
    }

    #[test]
    fn add_seal_retire_merge_round_trip() {
        let a = dna();
        let dir = tmpdir("roundtrip");
        let s = SegmentedSpine::create(a.clone(), &dir, SegmentConfig::default()).unwrap();
        let d0 = s.add_document(&enc(&a, "ACGTACGT")).unwrap();
        let d1 = s.add_document(&enc(&a, "TTTT")).unwrap();
        assert_eq!((d0, d1), (0, 1));
        assert_eq!(matches_of(&s, &a, "ACGT"), vec![(0, 0), (0, 4)]);
        // Seal, then add more on top: queries span memtable + segment.
        assert!(s.force_seal().unwrap());
        let d2 = s.add_document(&enc(&a, "ACGA")).unwrap();
        assert_eq!(matches_of(&s, &a, "ACG"), vec![(0, 0), (0, 4), (2, 0)]);
        assert_eq!(matches_of(&s, &a, "TTT"), vec![(1, 0), (1, 1)]);
        // Retire a sealed doc (durable tombstone) and a memtable doc
        // (volatile flag): both vanish from every surface.
        assert!(s.retire_document(d1).unwrap());
        assert!(!s.retire_document(d1).unwrap());
        assert!(s.retire_document(d2).unwrap());
        assert_eq!(matches_of(&s, &a, "TTT"), vec![]);
        assert_eq!(matches_of(&s, &a, "ACG"), vec![(0, 0), (0, 4)]);
        assert!(matches!(s.retire_document(99), Err(Error::UnknownDocument { doc: 99 })));
        // Merge compacts the tombstone away; answers unchanged. The
        // memtable holds only the retired d2, so this seal is a no-op.
        assert!(!s.force_seal().unwrap());
        assert!(s.merge_once().unwrap());
        assert_eq!(s.stats().tombstones, 0);
        assert_eq!(matches_of(&s, &a, "ACG"), vec![(0, 0), (0, 4)]);
        assert_eq!(s.live_doc_ids(), vec![0]);
        assert_eq!(s.document(d0).unwrap().unwrap(), enc(&a, "ACGTACGT"));
        assert_eq!(s.document(d1).unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_reopens_committed_state_and_forgets_the_memtable() {
        let a = dna();
        let dir = tmpdir("recover");
        let epoch_before;
        {
            let s = SegmentedSpine::create(a.clone(), &dir, SegmentConfig::default()).unwrap();
            s.add_document(&enc(&a, "ACGTACGT")).unwrap();
            s.add_document(&enc(&a, "GGGG")).unwrap();
            s.force_seal().unwrap();
            s.retire_document(1).unwrap();
            // Volatile: never sealed, must be forgotten by recovery.
            s.add_document(&enc(&a, "CCCC")).unwrap();
            epoch_before = s.epoch();
        }
        let s = SegmentedSpine::open(a.clone(), &dir, SegmentConfig::default()).unwrap();
        assert_eq!(s.epoch(), epoch_before);
        assert_eq!(s.orphan_count(), 0);
        assert_eq!(s.live_doc_ids(), vec![0]);
        assert_eq!(matches_of(&s, &a, "CCCC"), vec![]);
        assert_eq!(matches_of(&s, &a, "ACGT"), vec![(0, 0), (0, 4)]);
        // The lost memtable doc's id is deliberately reissued.
        assert_eq!(s.add_document(&enc(&a, "TTAA")).unwrap(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_reads_survive_concurrent_seal_and_merge() {
        let a = dna();
        let dir = tmpdir("snapstable");
        let s = SegmentedSpine::create(a.clone(), &dir, SegmentConfig::default()).unwrap();
        s.add_document(&enc(&a, "ACGT")).unwrap();
        s.force_seal().unwrap();
        s.add_document(&enc(&a, "ACCA")).unwrap();
        let snap_before = s.snapshot();
        // Mutate heavily after the snapshot.
        s.retire_document(0).unwrap();
        s.add_document(&enc(&a, "ACAC")).unwrap();
        s.force_seal().unwrap();
        s.merge_once().unwrap();
        // The snapshot still sees exactly docs {0, 1}: segment files were
        // deleted by the merge, but its handles keep them readable.
        let pat = enc(&a, "AC");
        let outs = {
            // Re-resolve through the snapshot manually, mirroring
            // answer_patterns' component walk.
            let st = snap_before.memtable.state.read();
            let mut got: Vec<(usize, usize)> = st
                .index
                .find_all(&pat)
                .into_iter()
                .filter(|m| m.doc < snap_before.mem_docs && !snap_before.mem_retired[m.doc])
                .map(|m| (st.doc_ids[m.doc] as usize, m.offset))
                .collect();
            for seg in snap_before.segments.iter() {
                for start in seg.index.try_find_all(&pat).unwrap() {
                    let (id, off) = seg.localize(start);
                    if !snap_before.tombstones.contains(&id) {
                        got.push((id as usize, off));
                    }
                }
            }
            got.sort_unstable();
            got
        };
        assert_eq!(outs, vec![(0, 0), (1, 0)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_mid_commit_recovers_to_the_previous_epoch() {
        let a = dna();
        let dir = tmpdir("crashcommit");
        {
            let s = SegmentedSpine::create(a.clone(), &dir, SegmentConfig::default()).unwrap();
            s.add_document(&enc(&a, "ACGTACGT")).unwrap();
            s.force_seal().unwrap();
        }
        // Count the ops a clean seal of a second doc takes, then crash at
        // every prefix of them.
        let count = {
            let probe = tmpdir("crashcommit-probe");
            fs::create_dir_all(&probe).unwrap();
            copy_dir(&dir, &probe);
            let gate = IoGate::unarmed();
            let cfg = SegmentConfig { gate: Some(gate.clone()), ..SegmentConfig::default() };
            let s = SegmentedSpine::open(a.clone(), &probe, cfg).unwrap();
            let before = gate.ops();
            s.add_document(&enc(&a, "GGCC")).unwrap();
            s.force_seal().unwrap();
            let n = gate.ops() - before;
            let _ = fs::remove_dir_all(&probe);
            n
        };
        assert!(count > 4, "a seal must take several I/O ops, got {count}");
        for k in 0..count {
            let work = tmpdir("crashcommit-k");
            fs::create_dir_all(&work).unwrap();
            copy_dir(&dir, &work);
            let clean = SegmentConfig::default();
            let epoch0 = SegmentedSpine::open(a.clone(), &work, clean.clone()).unwrap().epoch();
            {
                let gate = IoGate::unarmed();
                let warm = SegmentedSpine::open(
                    a.clone(),
                    &work,
                    SegmentConfig { gate: Some(gate.clone()), ..SegmentConfig::default() },
                )
                .unwrap();
                let baseline = gate.ops();
                let armed = IoGate::armed(baseline + k);
                drop(warm);
                let cfg = SegmentConfig { gate: Some(armed), ..SegmentConfig::default() };
                let s = SegmentedSpine::open(a.clone(), &work, cfg);
                // Recovery itself may crash (k below its op count): that
                // must be an error, never a panic or a torn store.
                if let Ok(s) = s {
                    let r =
                        s.add_document(&enc(&a, "GGCC")).and_then(|_| s.force_seal().map(|_| ()));
                    assert!(r.is_err(), "k={k} should have crashed");
                }
            }
            // Ungated recovery: must land on a committed epoch — the old
            // one, or (when the crash hit after the rename but before the
            // directory sync) the new one — with that epoch's exact
            // answers either way. Never a torn state.
            let s = SegmentedSpine::open(a.clone(), &work, clean).unwrap();
            let e = s.epoch();
            assert_eq!(matches_of(&s, &a, "ACGT"), vec![(0, 0), (0, 4)], "k={k}");
            if e == epoch0 {
                assert_eq!(s.live_doc_ids(), vec![0], "k={k}");
                assert_eq!(matches_of(&s, &a, "GGCC"), vec![], "k={k}");
            } else {
                assert_eq!(e, epoch0 + 1, "k={k}: epoch must be committed");
                assert_eq!(s.live_doc_ids(), vec![0, 1], "k={k}");
                assert_eq!(matches_of(&s, &a, "GGCC"), vec![(1, 0)], "k={k}");
            }
            let _ = fs::remove_dir_all(&work);
        }
    }

    #[test]
    fn orphans_are_detected_and_cleanable() {
        let a = dna();
        let dir = tmpdir("orphans");
        {
            let s = SegmentedSpine::create(a.clone(), &dir, SegmentConfig::default()).unwrap();
            s.add_document(&enc(&a, "ACGT")).unwrap();
            s.force_seal().unwrap();
        }
        fs::write(dir.join("seg-99.pages"), b"stray").unwrap();
        fs::write(dir.join("MANIFEST.tmp"), b"torn").unwrap();
        let s = SegmentedSpine::open(a.clone(), &dir, SegmentConfig::default()).unwrap();
        assert_eq!(s.orphan_count(), 2);
        assert_eq!(s.stats().orphans, 2);
        // Orphans never affect answers.
        assert_eq!(matches_of(&s, &a, "ACGT"), vec![(0, 0)]);
        assert_eq!(s.cleanup_orphans().unwrap(), 2);
        assert_eq!(s.orphan_count(), 0);
        assert!(!dir.join("seg-99.pages").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn background_merger_compacts() {
        let a = dna();
        let dir = tmpdir("bgmerge");
        let cfg = SegmentConfig { merge_min_segments: 2, ..SegmentConfig::default() };
        let s = Arc::new(SegmentedSpine::create(a.clone(), &dir, cfg).unwrap());
        for text in ["ACGT", "GGTT", "CACA"] {
            s.add_document(&enc(&a, text)).unwrap();
            s.force_seal().unwrap();
        }
        assert_eq!(s.stats().segments, 3);
        let h = spawn_merger(s.clone(), Duration::from_millis(1));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while s.stats().segments > 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        h.stop();
        assert_eq!(s.stats().segments, 1);
        assert_eq!(s.live_doc_ids(), vec![0, 1, 2]);
        assert_eq!(matches_of(&s, &a, "CACA"), vec![(2, 0)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lifecycle_journal_records_events_and_recovery_appends() {
        let a = dna();
        let dir = tmpdir("journal");
        {
            let s = SegmentedSpine::create(a.clone(), &dir, SegmentConfig::default()).unwrap();
            s.add_document(&enc(&a, "ACGTACGT")).unwrap();
            s.add_document(&enc(&a, "TTTT")).unwrap();
            s.force_seal().unwrap();
            s.add_document(&enc(&a, "GGGG")).unwrap();
            let mut times = MergeTimes::default();
            s.force_seal_observed(&mut times).unwrap();
            assert!(times.phase_nanos[MergePhase::Commit.index()] > 0);
            assert_eq!(times.phase_nanos[MergePhase::Collect.index()], 0);
            s.retire_document(1).unwrap();
            s.merge_once().unwrap();
            let evs = s.recent_journal(10).unwrap();
            let kinds: Vec<JournalKind> = evs.iter().map(|e| e.kind).collect();
            use JournalKind::*;
            assert_eq!(kinds, vec![Seal, Seal, Retire, Merge]);
            assert_eq!(evs.iter().map(|e| e.epoch).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
            assert_eq!((evs[0].docs, evs[0].outputs.clone()), (2, vec![0]));
            // Retire records the document id it tombstoned.
            assert_eq!(evs[2].docs, 1);
            let m = &evs[3];
            assert_eq!((m.inputs.clone(), m.outputs.clone()), (vec![0, 1], vec![2]));
            assert_eq!((m.docs, m.aux), (2, 1));
            assert!(m.phase_nanos.iter().sum::<u64>() > 0, "merge phases must be timed");
            // recent_journal keeps the newest n.
            assert_eq!(s.recent_journal(2).unwrap(), evs[2..].to_vec());
        }
        // Reopen: replay cross-checks (journal trails manifest), recovery
        // appends its own event, and the whole file strict-decodes — no
        // torn records from any of the above.
        let s = SegmentedSpine::open(a.clone(), &dir, SegmentConfig::default()).unwrap();
        let evs = journal::decode_all(&fs::read(s.journal_path()).unwrap()).unwrap();
        let last = evs.last().unwrap();
        assert_eq!(last.kind, JournalKind::Recover);
        assert_eq!(last.epoch, s.epoch());
        assert_eq!((last.docs, last.aux), (2, 0));
        assert_eq!(last.outputs, vec![2]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_tail_is_salvaged_and_an_ahead_journal_is_rejected() {
        let a = dna();
        let dir = tmpdir("journaltear");
        {
            let s = SegmentedSpine::create(a.clone(), &dir, SegmentConfig::default()).unwrap();
            s.add_document(&enc(&a, "ACGT")).unwrap();
            s.force_seal().unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        // A crash mid-append leaves a torn tail: recovery must truncate it
        // away and keep going.
        let clean_len = fs::metadata(&path).unwrap().len();
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xde, 0xad, 0xbe]).unwrap();
        drop(f);
        let s = SegmentedSpine::open(a.clone(), &dir, SegmentConfig::default()).unwrap();
        assert_eq!(s.live_doc_ids(), vec![0]);
        let evs = journal::decode_all(&fs::read(&path).unwrap()).unwrap();
        assert_eq!(evs.last().unwrap().kind, JournalKind::Recover);
        assert!(fs::metadata(&path).unwrap().len() > clean_len, "recover event appended");
        drop(s);
        // A journal *ahead* of the manifest cannot be a crash artifact
        // (events append only after their commit is durable): refuse.
        let forged = JournalEvent {
            kind: JournalKind::Seal,
            epoch: 999,
            unix_ms: 0,
            docs: 0,
            aux: 0,
            inputs: Vec::new(),
            outputs: Vec::new(),
            phase_nanos: [0; MergePhase::COUNT],
        };
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&forged.encode()).unwrap();
        drop(f);
        let e = match SegmentedSpine::open(a.clone(), &dir, SegmentConfig::default()) {
            Err(e) => e,
            Ok(_) => panic!("ahead-of-manifest journal must refuse to open"),
        };
        assert!(matches!(e, Error::Parse(_)), "unexpected error {e}");
        let _ = fs::remove_dir_all(&dir);
    }

    fn copy_dir(from: &Path, to: &Path) {
        for e in fs::read_dir(from).unwrap() {
            let e = e.unwrap();
            fs::copy(e.path(), to.join(e.file_name())).unwrap();
        }
    }
}
