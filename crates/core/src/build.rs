//! Online SPINE construction (Section 3 of the paper).
//!
//! The index grows strictly at the tail: appending character `c` creates one
//! node and then walks the *link chain* of the previous tail, extending every
//! early-terminating suffix by `c`. Each chain node stands for a whole set
//! of suffix lengths, so one check per chain node suffices — the property
//! that later makes searches examine far fewer nodes than a suffix tree
//! (Table 6 of the paper).
//!
//! The walk carries `l`, the LEL of the most recently traversed link (= the
//! longest not-yet-extended suffix length), and at each chain node does one
//! of four things, mirroring the paper's CASE 1–4:
//!
//! 1. a **vertebra** for `c` exists → the extension is already indexed;
//!    link the new node to the vertebra's destination with LEL `l + 1`;
//! 2. a **rib** for `c` with `PT ≥ l` exists → same, destination is the
//!    rib's;
//! 3. **no edge** for `c` → create a rib to the new node with `PT = l` and
//!    continue up the chain (stopping after the root);
//! 4. a rib for `c` with `PT < l` exists → the rib is too weak for the
//!    pending suffixes; walk its **extrib chain**: the first element with
//!    `PT ≥ l` proves the extension exists (link there), otherwise append a
//!    fresh extrib from the chain's end to the new node (`PT = l`,
//!    `PRT =` rib's PT) and link to the chain end with LEL = last element's
//!    PT + 1.

use crate::node::{Extrib, Node, NodeId, Rib, ROOT};
use crate::observe::{BuildEvent, BuildObserver, BuildPhase, BuildStats, MemBreakdown};
use strindex::{Alphabet, Code, Counters, Error, OnlineIndex, PackedText, Result};

/// The reference SPINE index: explicit nodes and edges in memory.
///
/// Built online ([`OnlineIndex::push`]) or in one shot ([`Spine::build`]).
/// Queries live in [`crate::search`], [`crate::occurrences`] and
/// [`crate::matching`].
pub struct Spine {
    pub(crate) alphabet: Alphabet,
    pub(crate) nodes: Vec<Node>,
    pub(crate) counters: Counters,
    /// Backbone labels word-packed at `alphabet.pack_bits()` for the packed
    /// search fast path; `None` for unpackable alphabets, or from the first
    /// appended code that does not fit (a DNA separator).
    pub(crate) packed: Option<PackedText>,
}

impl Spine {
    /// An empty index (just the root) over `alphabet`.
    pub fn new(alphabet: Alphabet) -> Self {
        let packed = alphabet.pack_bits().map(PackedText::new);
        Spine { alphabet, nodes: vec![Node::new(Code::MAX)], counters: Counters::new(), packed }
    }

    /// Build the index for an encoded text in one call.
    pub fn build(alphabet: Alphabet, text: &[Code]) -> Result<Self> {
        let mut s = Spine::new(alphabet);
        s.nodes.reserve(text.len());
        s.extend_from(text)?;
        Ok(s)
    }

    /// Convenience: encode `text` with `alphabet` and build.
    pub fn build_from_bytes(alphabet: Alphabet, text: &[u8]) -> Result<Self> {
        let codes = alphabet.encode(text)?;
        Self::build(alphabet, &codes)
    }

    /// Build while reporting every structural event to `observer`. With
    /// [`crate::observe::NoBuildObserver`] this monomorphizes to the same
    /// code as [`Spine::build`].
    pub fn build_observed<O: BuildObserver>(
        alphabet: Alphabet,
        text: &[Code],
        observer: &mut O,
    ) -> Result<Self> {
        let mut s = Spine::new(alphabet);
        s.nodes.reserve(text.len());
        s.extend_from_observed(text, observer)?;
        Ok(s)
    }

    /// Build and return the index together with a reconciled
    /// [`BuildStats`] (event counts, Scan-phase timing, memory breakdown).
    pub fn build_with_stats(alphabet: Alphabet, text: &[Code]) -> Result<(Self, BuildStats)> {
        let mut stats = BuildStats::default();
        let s = Self::build_observed(alphabet, text, &mut stats)?;
        stats.mem = s.mem_breakdown();
        Ok((s, stats))
    }

    /// Observed batch append: times the whole loop as the Scan phase.
    pub fn extend_from_observed<O: BuildObserver>(
        &mut self,
        codes: &[Code],
        observer: &mut O,
    ) -> Result<()> {
        let t0 = if O::ENABLED { Some(std::time::Instant::now()) } else { None };
        for &c in codes {
            self.push_observed(c, observer)?;
        }
        if let Some(t0) = t0 {
            observer.phase(BuildPhase::Scan, t0.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    /// Observed online append (same validation as [`OnlineIndex::push`]).
    pub fn push_observed<O: BuildObserver>(&mut self, code: Code, observer: &mut O) -> Result<()> {
        if (code as usize) >= self.alphabet.code_space() {
            return Err(Error::InvalidSymbol { byte: code, pos: self.len() });
        }
        if self.nodes.len() as u64 >= NodeId::MAX as u64 {
            return Err(Error::TooLong { len: self.nodes.len(), max: NodeId::MAX as usize - 1 });
        }
        self.append_observed(code, observer);
        Ok(())
    }

    /// Heap bytes split by edge kind (capacity-based, consistent with
    /// [`Spine::heap_bytes`]).
    pub fn mem_breakdown(&self) -> MemBreakdown {
        let n = self.nodes.len() as u64;
        let ribs: u64 = self
            .nodes
            .iter()
            .map(|nd| nd.ribs.capacity() as u64 * std::mem::size_of::<Rib>() as u64)
            .sum();
        let extribs: u64 = self
            .nodes
            .iter()
            .map(|nd| nd.extribs.capacity() as u64 * std::mem::size_of::<Extrib>() as u64)
            .sum();
        MemBreakdown {
            vertebrae: n * std::mem::size_of::<Code>() as u64,
            links: n * (std::mem::size_of::<NodeId>() as u64 + std::mem::size_of::<u32>() as u64),
            ribs,
            extribs,
        }
    }

    /// Number of indexed characters (== number of non-root nodes: SPINE's
    /// defining property).
    pub fn len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Is the index empty (no characters appended yet)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The index's alphabet.
    pub fn alphabet_ref(&self) -> &Alphabet {
        &self.alphabet
    }

    /// All nodes, root first. Exposed for the stats/verify modules and the
    /// compact-layout converter.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Search-work counters (see [`strindex::Counters`]).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Reconstruct the indexed text from the vertebra labels. The paper
    /// highlights that "the data string is not required any more once the
    /// index is constructed" — this is that property made executable.
    pub fn recover_text(&self) -> Vec<Code> {
        self.nodes[1..].iter().map(|n| n.vertebra_cl).collect()
    }

    /// Append one character: the paper's APPEND procedure.
    fn append(&mut self, c: Code) {
        self.append_observed(c, &mut crate::observe::NoBuildObserver);
    }

    /// APPEND with observer hooks. Every `if O::ENABLED` block vanishes for
    /// the disabled observer, leaving the original code.
    fn append_observed<O: BuildObserver>(&mut self, c: Code, o: &mut O) {
        let t = self.nodes.len() as NodeId; // id of the new node
        let prev = t - 1;
        self.nodes.push(Node::new(c));
        // Keep the packed shadow of the backbone labels in sync; a code that
        // does not fit the packing (DNA separator) disables it for good.
        if let Some(p) = &mut self.packed {
            if !p.try_push(c) {
                self.packed = None;
            }
        }
        if prev == ROOT {
            // First character: link to root with LEL 0 (already the default).
            if O::ENABLED {
                o.event(BuildEvent::FirstChar);
                o.event(BuildEvent::LinkSet { dest: ROOT, lel: 0 });
            }
            return;
        }

        let (mut cur, mut l) = {
            let p = &self.nodes[prev as usize];
            (p.link, p.lel)
        };
        loop {
            // Vertebra for `c` at `cur`? (The outgoing vertebra of a chain
            // node always exists: chain nodes precede the old tail.)
            debug_assert!(cur < prev);
            if self.nodes[cur as usize + 1].vertebra_cl == c {
                self.set_link(t, cur + 1, l + 1);
                if O::ENABLED {
                    o.event(BuildEvent::Case1);
                    o.event(BuildEvent::LinkSet { dest: cur + 1, lel: l + 1 });
                }
                return;
            }
            match self.nodes[cur as usize].rib(c).copied() {
                Some(rib) if rib.pt >= l => {
                    self.set_link(t, rib.dest, l + 1);
                    if O::ENABLED {
                        o.event(BuildEvent::Case2);
                        o.event(BuildEvent::LinkSet { dest: rib.dest, lel: l + 1 });
                    }
                    return;
                }
                Some(rib) => {
                    // CASE 4: the rib's threshold is too small.
                    self.extend_via_extribs(rib, l, t, o);
                    return;
                }
                None => {
                    // CASE 3: first-time extension — create a rib.
                    self.nodes[cur as usize].ribs.push(Rib { cl: c, dest: t, pt: l });
                    if O::ENABLED {
                        o.event(BuildEvent::RibCreated { pt: l });
                    }
                    if cur == ROOT {
                        debug_assert_eq!(l, 0, "links into the root carry LEL 0");
                        self.set_link(t, ROOT, 0);
                        if O::ENABLED {
                            o.event(BuildEvent::Case3Root);
                            o.event(BuildEvent::LinkSet { dest: ROOT, lel: 0 });
                        }
                        return;
                    }
                    if O::ENABLED {
                        o.event(BuildEvent::ChainStep);
                    }
                    let n = &self.nodes[cur as usize];
                    cur = n.link;
                    l = n.lel;
                }
            }
        }
    }

    /// CASE 4: walk the extrib chain of `rib` (all elements share
    /// `PRT == rib.pt`). Chain PTs increase strictly, covering
    /// `(rib.pt, PT₁], (PT₁, PT₂], …`.
    fn extend_via_extribs<O: BuildObserver>(&mut self, rib: Rib, l: u32, t: NodeId, o: &mut O) {
        let t0 = if O::ENABLED { Some(std::time::Instant::now()) } else { None };
        let prt = rib.pt;
        let mut last_dest = rib.dest;
        let mut last_pt = rib.pt;
        while let Some(e) = self.nodes[last_dest as usize].extrib(prt).copied() {
            debug_assert!(e.pt > last_pt, "extrib chain PTs must increase");
            if e.pt >= l {
                // The length-`l` extension already exists, ending at e.dest.
                self.set_link(t, e.dest, l + 1);
                if O::ENABLED {
                    o.event(BuildEvent::Case4Link);
                    o.event(BuildEvent::LinkSet { dest: e.dest, lel: l + 1 });
                    if let Some(t0) = t0 {
                        o.phase(BuildPhase::RibFixup, t0.elapsed().as_nanos() as u64);
                    }
                }
                return;
            }
            if O::ENABLED {
                o.event(BuildEvent::ChainStep);
            }
            last_dest = e.dest;
            last_pt = e.pt;
        }
        // Chain exhausted: record the new extension from the chain's end.
        self.nodes[last_dest as usize].extribs.push(Extrib { prt, pt: l, dest: t });
        self.set_link(t, last_dest, last_pt + 1);
        if O::ENABLED {
            o.event(BuildEvent::ExtribCreated { prt, pt: l });
            o.event(BuildEvent::Case4Extrib);
            o.event(BuildEvent::LinkSet { dest: last_dest, lel: last_pt + 1 });
            if let Some(t0) = t0 {
                o.phase(BuildPhase::RibFixup, t0.elapsed().as_nanos() as u64);
            }
        }
    }

    #[inline]
    fn set_link(&mut self, node: NodeId, dest: NodeId, lel: u32) {
        let n = &mut self.nodes[node as usize];
        n.link = dest;
        n.lel = lel;
    }
}

impl crate::ops::SpineOps for Spine {
    fn text_len(&self) -> usize {
        self.len()
    }

    #[inline]
    fn vertebra_out(&self, node: NodeId) -> Option<Code> {
        self.nodes.get(node as usize + 1).map(|n| n.vertebra_cl)
    }

    #[inline]
    fn link_of(&self, node: NodeId) -> (NodeId, u32) {
        let n = &self.nodes[node as usize];
        (n.link, n.lel)
    }

    #[inline]
    fn rib_of(&self, node: NodeId, c: Code) -> Option<(NodeId, u32)> {
        self.nodes[node as usize].rib(c).map(|r| (r.dest, r.pt))
    }

    #[inline]
    fn extrib_of(&self, node: NodeId, prt: u32) -> Option<(NodeId, u32)> {
        self.nodes[node as usize].extrib(prt).map(|e| (e.dest, e.pt))
    }

    fn ops_counters(&self) -> &Counters {
        &self.counters
    }

    fn backbone_packing(&self) -> Option<u32> {
        self.packed.as_ref().map(|p| p.bits())
    }

    #[inline]
    fn label_run(&self, node: NodeId, pattern: &PackedText, from: usize) -> usize {
        match &self.packed {
            Some(p) => p.lcp(node as usize, pattern, from, pattern.len() - from),
            None => {
                let mut k = 0;
                while from + k < pattern.len() {
                    match self.vertebra_out(node + k as NodeId) {
                        Some(c) if c == pattern.get(from + k) => k += 1,
                        _ => break,
                    }
                }
                k
            }
        }
    }
}

impl OnlineIndex for Spine {
    fn push(&mut self, code: Code) -> Result<()> {
        if (code as usize) >= self.alphabet.code_space() {
            return Err(Error::InvalidSymbol { byte: code, pos: self.len() });
        }
        if self.nodes.len() as u64 >= NodeId::MAX as u64 {
            return Err(Error::TooLong { len: self.nodes.len(), max: NodeId::MAX as usize - 1 });
        }
        self.append(code);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build over the paper's running example `aaccacaaca`.
    fn paper_spine() -> (Alphabet, Spine) {
        let a = Alphabet::dna();
        let s = Spine::build_from_bytes(a.clone(), b"AACCACAACA").unwrap();
        (a, s)
    }

    #[test]
    fn one_node_per_character() {
        let (_, s) = paper_spine();
        assert_eq!(s.len(), 10);
        assert_eq!(s.nodes().len(), 11);
    }

    #[test]
    fn recover_text_round_trips() {
        let (a, s) = paper_spine();
        assert_eq!(a.decode_all(&s.recover_text()), b"AACCACAACA");
    }

    #[test]
    fn paper_figure3_links() {
        // Derived by hand from the definitions (LET suffix / first
        // occurrence); the figure's own numerals are partly illegible in the
        // source, but the paper's text confirms link(8) = (node 2, LEL 2).
        let (_, s) = paper_spine();
        let link = |i: usize| (s.nodes()[i].link, s.nodes()[i].lel);
        assert_eq!(link(1), (0, 0)); // "a": nothing earlier
        assert_eq!(link(2), (1, 1)); // "aa" → LET "a" ends at 1
        assert_eq!(link(3), (0, 0)); // "aac": "c" is new
        assert_eq!(link(4), (3, 1)); // "aacc" → LET "c" ends at 3
        assert_eq!(link(5), (1, 1)); // "aacca" → LET "a" ends at 1
        assert_eq!(link(6), (3, 2)); // "aaccac" → LET "ac" ends at 3
        assert_eq!(link(7), (5, 2)); // "aaccaca" → LET "ca" ends at 5
        assert_eq!(link(8), (2, 2)); // "aaccacaa" → LET "aa" ends at 2  (paper)
        assert_eq!(link(9), (3, 3)); // "aaccacaac" → LET "aac" ends at 3
        assert_eq!(link(10), (7, 3)); // "aaccacaaca" → LET "aca" ends at 7
    }

    #[test]
    fn paper_figure3_edge_census() {
        // §1.1: "it has 11 nodes and 26 edges" — 10 vertebras, 10 links,
        // 4 ribs, 2 extribs.
        let (_, s) = paper_spine();
        let ribs: usize = s.nodes().iter().map(|n| n.ribs.len()).sum();
        let extribs: usize = s.nodes().iter().map(|n| n.extribs.len()).sum();
        let vertebras = s.len();
        let links = s.len(); // every non-root node has exactly one
        assert_eq!(ribs, 4);
        assert_eq!(extribs, 2);
        assert_eq!(vertebras + links + ribs + extribs, 26);
        // The chain the paper describes: extrib 5→7, then 7→10, both PRT 1.
        let e2 = s.nodes()[7].extrib(1).expect("second chain element");
        assert_eq!((e2.dest, e2.pt, e2.prt), (10, 3, 1));
    }

    #[test]
    fn paper_figure3_ribs() {
        let (a, s) = paper_spine();
        let c = |ch: u8| a.encode_byte(ch).unwrap();
        // Paper: "the rib from Node 3 has a PT of 1" (for character a → node 5,
        // created while appending position 5).
        let rib = s.nodes()[3].rib(c(b'a')).expect("rib at node 3");
        assert_eq!((rib.dest, rib.pt), (5, 1));
        // Paper: "the extrib from Node 5 to Node 7 has a PRT of 1 and PT of 2".
        let e = s.nodes()[5].extrib(1).expect("extrib at node 5");
        assert_eq!((e.dest, e.pt, e.prt), (7, 2, 1));
    }

    #[test]
    fn case1_vertebra_found() {
        // Appending position 2 of "aa…": chain starts at link(1) = root,
        // whose vertebra is labeled 'a' → CASE 1, link(2) = (1, 1).
        let a = Alphabet::dna();
        let s = Spine::build_from_bytes(a, b"AA").unwrap();
        assert_eq!((s.nodes()[2].link, s.nodes()[2].lel), (1, 1));
        assert!(s.nodes()[0].ribs.is_empty());
    }

    #[test]
    fn case3_rib_from_root_has_pt0() {
        // "AC": appending C walks to the root and creates a rib with PT 0.
        let a = Alphabet::dna();
        let s = Spine::build_from_bytes(a.clone(), b"AC").unwrap();
        let rib = s.nodes()[0].rib(a.encode_byte(b'C').unwrap()).unwrap();
        assert_eq!((rib.dest, rib.pt), (2, 0));
        assert_eq!((s.nodes()[2].link, s.nodes()[2].lel), (0, 0));
    }

    #[test]
    fn push_rejects_out_of_alphabet_codes() {
        let a = Alphabet::dna();
        let mut s = Spine::new(a);
        assert!(s.push(3).is_ok());
        // 4 is the separator (allowed), 5 is out of range.
        assert!(s.push(4).is_ok());
        assert!(matches!(s.push(5), Err(Error::InvalidSymbol { .. })));
    }

    #[test]
    fn empty_index() {
        let s = Spine::new(Alphabet::dna());
        assert!(s.is_empty());
        assert_eq!(s.recover_text(), Vec::<Code>::new());
    }

    #[test]
    fn build_stats_reconcile_on_paper_example() {
        let a = Alphabet::dna();
        let codes = a.encode(b"AACCACAACA").unwrap();
        let (s, st) = Spine::build_with_stats(a, &codes).unwrap();
        assert_eq!(st.insertions, 10);
        assert_eq!(st.dispositions(), 10);
        assert_eq!(st.links_set, 10);
        // Figure 3 census: 4 ribs, 2 extribs.
        assert_eq!(st.ribs_created, 4);
        assert_eq!(st.ribs_absorbed, 0);
        assert_eq!(st.extribs_created, 2);
        let struct_ribs: u64 = s.nodes().iter().map(|n| n.ribs.len() as u64).sum();
        let struct_extribs: u64 = s.nodes().iter().map(|n| n.extribs.len() as u64).sum();
        assert_eq!(st.ribs_created - st.ribs_absorbed, struct_ribs);
        assert_eq!(st.extribs_created, struct_extribs);
        let positive = s.nodes()[1..].iter().filter(|n| n.lel > 0).count() as u64;
        assert_eq!(st.links_with_positive_lel, positive);
        assert_eq!(st.max_lel, 3);
        // Scan phase was timed and memory was accounted.
        assert!(st.nodes_per_sec().is_some());
        assert!(st.mem.total() > 0);
        assert_eq!(st.mem.vertebrae, 11);
    }

    #[test]
    fn observed_build_equals_plain_build() {
        let a = Alphabet::dna();
        let codes = a.encode(b"ACGTACGGTACGTTTACGACG").unwrap();
        let plain = Spine::build(a.clone(), &codes).unwrap();
        let (observed, _) = Spine::build_with_stats(a, &codes).unwrap();
        assert_eq!(plain.nodes(), observed.nodes());
    }

    #[test]
    fn online_equals_batch() {
        let a = Alphabet::dna();
        let text = a.encode(b"ACGTACGGTACGTTTACGACG").unwrap();
        let batch = Spine::build(a.clone(), &text).unwrap();
        let mut online = Spine::new(a);
        for &c in &text {
            online.push(c).unwrap();
        }
        assert_eq!(batch.nodes(), online.nodes());
    }
}
