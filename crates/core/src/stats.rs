//! Measurement hooks for the paper's structural tables and figures.
//!
//! * [`LabelMaxima`] — Table 3 (maximum PT/LEL/PRT values; the basis of the
//!   2-byte label optimization);
//! * [`RibDistribution`] — Table 4 (percentage of nodes by downstream
//!   fan-out; the basis of the multiple-Rib-Table layout);
//! * [`LinkDistribution`] — Figure 8 (links concentrate on upstream nodes;
//!   the basis of the prefix-priority buffering policy);
//! * [`NodeCost`] — Table 2 (worst-case bytes per node of the naive layout)
//!   and measured bytes of the reference representation.

use crate::build::Spine;
use crate::node::ROOT;
use strindex::Alphabet;

/// Maximum numeric label values over the whole index (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LabelMaxima {
    /// Largest rib or extrib pathlength threshold.
    pub max_pt: u32,
    /// Largest link label.
    pub max_lel: u32,
    /// Largest parent-rib threshold.
    pub max_prt: u32,
}

impl LabelMaxima {
    /// Do all labels fit the paper's 2-byte fields (values < 65 536)?
    pub fn fits_u16(&self) -> bool {
        self.max_pt < 1 << 16 && self.max_lel < 1 << 16 && self.max_prt < 1 << 16
    }
}

/// Downstream fan-out distribution (Table 4): `by_fanout[k]` = number of
/// nodes with exactly `k` outgoing ribs+extribs (index 0 = none).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RibDistribution {
    /// Node counts indexed by fan-out.
    pub by_fanout: Vec<u64>,
    /// Total nodes counted (excludes the root, matching the paper's
    /// per-character accounting).
    pub total: u64,
}

impl RibDistribution {
    /// Percentage of nodes with fan-out exactly `k`.
    pub fn percent(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        100.0 * self.by_fanout.get(k).copied().unwrap_or(0) as f64 / self.total as f64
    }

    /// Percentage of nodes with *any* downstream edge (the paper's
    /// "only around 30 to 35 percent"). 0 for an empty index — the
    /// complement form `100 − percent(0)` would claim every node of an
    /// empty trie has edges.
    pub fn percent_with_edges(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        100.0 - self.percent(0)
    }
}

/// Link-destination histogram (Figure 8): how far down the backbone links
/// point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkDistribution {
    /// Destination counts bucketed over the backbone; `buckets[b]` counts
    /// links landing in the b-th fraction of the node range.
    pub buckets: Vec<u64>,
}

impl LinkDistribution {
    /// Percentage of all links landing in bucket `b`.
    pub fn percent(&self, b: usize) -> f64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0.0;
        }
        100.0 * self.buckets[b] as f64 / total as f64
    }

    /// Is the histogram (weakly) dominated by its first half? (The paper's
    /// locality observation.)
    pub fn upstream_heavy(&self) -> bool {
        let half = self.buckets.len() / 2;
        let front: u64 = self.buckets[..half].iter().sum();
        let back: u64 = self.buckets[half..].iter().sum();
        front >= back
    }
}

/// Byte accounting for one index node (Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeCost {
    /// Worst-case bytes per node of the naive (all fields inline) layout.
    pub naive_worst_case: f64,
    /// Measured average bytes per indexed character of the reference
    /// representation actually built.
    pub reference_avg: f64,
}

impl Spine {
    /// Compute Table 3 for this index.
    pub fn label_maxima(&self) -> LabelMaxima {
        let mut m = LabelMaxima::default();
        for n in &self.nodes[1..] {
            m.max_lel = m.max_lel.max(n.lel);
            for r in &n.ribs {
                m.max_pt = m.max_pt.max(r.pt);
            }
            for e in &n.extribs {
                m.max_pt = m.max_pt.max(e.pt);
                m.max_prt = m.max_prt.max(e.prt);
            }
        }
        for r in &self.nodes[ROOT as usize].ribs {
            m.max_pt = m.max_pt.max(r.pt);
        }
        m
    }

    /// Compute Table 4 for this index.
    pub fn rib_distribution(&self) -> RibDistribution {
        let mut d = RibDistribution::default();
        for n in &self.nodes[1..] {
            let f = n.fanout();
            if d.by_fanout.len() <= f {
                d.by_fanout.resize(f + 1, 0);
            }
            d.by_fanout[f] += 1;
            d.total += 1;
        }
        if d.by_fanout.is_empty() {
            d.by_fanout.push(0);
        }
        d
    }

    /// Compute Figure 8 for this index with `buckets` histogram bins.
    pub fn link_distribution(&self, buckets: usize) -> LinkDistribution {
        assert!(buckets > 0);
        let mut h = vec![0u64; buckets];
        let n = self.len().max(1) as u64;
        for node in &self.nodes[1..] {
            let b = (node.link as u64 * buckets as u64 / (n + 1)) as usize;
            h[b.min(buckets - 1)] += 1;
        }
        LinkDistribution { buckets: h }
    }

    /// Compute Table 2 for this index's alphabet, plus the measured average
    /// of the reference representation.
    pub fn node_cost(&self) -> NodeCost {
        NodeCost {
            naive_worst_case: naive_worst_case_bytes(&self.alphabet),
            reference_avg: self.heap_bytes() as f64 / self.len().max(1) as f64,
        }
    }

    /// Number of nodes carrying more than one extrib — i.e. nodes where two
    /// different rib chains both parked an extension. The paper asserts its
    /// chaining scheme leaves at most one extrib per node; DESIGN.md §1
    /// explains why collisions are nevertheless possible in principle, and
    /// this counter measures how often they actually occur (empirically:
    /// rare but nonzero on repetitive inputs).
    pub fn extrib_collisions(&self) -> u64 {
        self.nodes.iter().filter(|n| n.extribs.len() > 1).count() as u64
    }

    /// Total heap bytes of the reference representation (node vector plus
    /// per-node rib/extrib vectors).
    pub fn heap_bytes(&self) -> usize {
        let nodes = self.nodes.capacity() * std::mem::size_of::<crate::node::Node>();
        let ribs: usize = self
            .nodes
            .iter()
            .map(|n| n.ribs.capacity() * std::mem::size_of::<crate::node::Rib>())
            .sum();
        let extribs: usize = self
            .nodes
            .iter()
            .map(|n| n.extribs.capacity() * std::mem::size_of::<crate::node::Extrib>())
            .sum();
        nodes + ribs + extribs
    }
}

/// Table 2's worst-case node size for a given alphabet: character label bits
/// /8 + vertebra dest (4) + link dest+LEL (8) + (size−1) ribs × (dest 4 +
/// PT 4) + one extrib × (dest 4 + PT 4 + PRT 4). For DNA this is the paper's
/// 48.25 bytes.
pub fn naive_worst_case_bytes(alphabet: &Alphabet) -> f64 {
    // Bits for the data symbols alone (2 for DNA, 5 for protein).
    let cl_bits = usize::BITS - (alphabet.size() - 1).leading_zeros();
    let max_ribs = (alphabet.size() - 1) as f64;
    cl_bits as f64 / 8.0 + 4.0 + 8.0 + max_ribs * 8.0 + 12.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_spine() -> Spine {
        Spine::build_from_bytes(Alphabet::dna(), b"AACCACAACA").unwrap()
    }

    #[test]
    fn table2_dna_worst_case_matches_paper() {
        // Table 2's total: 48.25 bytes for DNA.
        let s = paper_spine();
        assert!((s.node_cost().naive_worst_case - 48.25).abs() < 1e-9);
    }

    #[test]
    fn label_maxima_on_paper_string() {
        let s = paper_spine();
        let m = s.label_maxima();
        assert_eq!(m.max_lel, 3); // link(9)/link(10)
        assert_eq!(m.max_pt, 3); // extrib 7→10
        assert_eq!(m.max_prt, 1);
        assert!(m.fits_u16());
    }

    #[test]
    fn rib_distribution_counts_every_node() {
        let s = paper_spine();
        let d = s.rib_distribution();
        assert_eq!(d.total, 10);
        assert_eq!(d.by_fanout.iter().sum::<u64>(), 10);
        // Nodes with downstream edges: 1 (rib→3), 3 (rib→5), 5 (rib→8 +
        // extrib→7), 7 (extrib→10) = 4 of 10.
        assert!((d.percent_with_edges() - 40.0).abs() < 1e-9);
        assert!((d.percent(2) - 10.0).abs() < 1e-9); // node 5
    }

    #[test]
    fn link_distribution_is_upstream_heavy() {
        let s = paper_spine();
        let h = s.link_distribution(5);
        assert_eq!(h.buckets.iter().sum::<u64>(), 10);
        assert!(h.upstream_heavy());
        // All links of the example point to nodes 0..=7.
        assert_eq!(h.buckets[4], 0);
    }

    #[test]
    fn heap_bytes_is_positive_and_scales() {
        let a = Alphabet::dna();
        let small = Spine::build_from_bytes(a.clone(), b"ACGT").unwrap();
        let big = Spine::build_from_bytes(a, &b"ACGTACGTGGTTAACC".repeat(64)).unwrap();
        assert!(small.heap_bytes() > 0);
        assert!(big.heap_bytes() > small.heap_bytes());
    }

    #[test]
    fn empty_index_stats_do_not_panic() {
        let s = Spine::new(Alphabet::dna());
        assert_eq!(s.rib_distribution().total, 0);
        assert_eq!(s.label_maxima(), LabelMaxima::default());
        let _ = s.link_distribution(4);
        let _ = s.node_cost();
    }

    #[test]
    fn empty_index_percentages_are_zero() {
        // Regression: percent_with_edges used to return 100.0 − percent(0)
        // unconditionally, reporting 100 % of an empty index's zero nodes
        // as having downstream edges.
        let d = Spine::new(Alphabet::dna()).rib_distribution();
        assert_eq!(d.percent_with_edges(), 0.0);
        assert_eq!(d.percent(0), 0.0);
        assert_eq!(d.percent(7), 0.0);
        let empty_links = LinkDistribution { buckets: vec![0; 4] };
        assert_eq!(empty_links.percent(0), 0.0);
        assert_eq!(empty_links.percent(3), 0.0);
    }
}
