//! Valid-path search (Section 4 of the paper).
//!
//! A search path is *valid* iff it starts at the root and every rib/extrib
//! it takes satisfies the pathlength-threshold constraint: a rib may be
//! traversed by a path of current length `pl` only when `pl ≤ PT`; when the
//! rib fails, its extrib chain is scanned for the first element with
//! `PT ≥ pl` (matching the rib by PRT). Valid paths spell exactly the
//! substrings of the text, and end at the first-occurrence end position —
//! the paper's central no-false-positives theorem, which the property tests
//! verify against the naive trie.
//!
//! The algorithms here are generic over [`SpineOps`], so the reference,
//! compact, and disk representations share them.

use crate::build::Spine;
use crate::node::{NodeId, ROOT};
use crate::ops::{FallibleSpineOps, Infallible, SpineOps};
use crate::trace::{NoTrace, TraceEvent, TraceSink};
use strindex::{Alphabet, Code, PackedText, Result, StringIndex};

/// [`try_step`] with a [`TraceSink`] attached: every traversal decision —
/// the vertebra match, the rib's PT comparison, each extrib-chain probe,
/// and the two mismatch terminations — is reported as a [`TraceEvent`].
/// With [`NoTrace`] (whose `ENABLED` is `false`) this monomorphizes to the
/// untraced step.
#[inline]
pub fn try_step_traced<S: FallibleSpineOps + ?Sized, T: TraceSink + ?Sized>(
    s: &S,
    sink: &mut T,
    node: NodeId,
    pl: u32,
    c: Code,
) -> Result<Option<NodeId>> {
    s.ops_counters().count_node_check();
    // Vertebras are unconstrained.
    if s.try_vertebra_out(node)? == Some(c) {
        s.ops_counters().count_edge();
        if T::ENABLED {
            sink.event(TraceEvent::Vertebra { node, pl, ch: c });
        }
        return Ok(Some(node + 1));
    }
    let Some((dest, pt)) = s.try_rib_of(node, c)? else {
        if T::ENABLED {
            sink.event(TraceEvent::NoEdge { node, pl, ch: c });
        }
        return Ok(None);
    };
    if T::ENABLED {
        sink.event(TraceEvent::Rib { node, ch: c, dest, pt, pl, admitted: pl <= pt });
    }
    if pl <= pt {
        s.ops_counters().count_edge();
        return Ok(Some(dest));
    }
    // Rib fails the threshold test: follow its extrib chain.
    let prt = pt;
    let mut at = dest;
    loop {
        s.ops_counters().count_extrib();
        let Some((edest, ept)) = s.try_extrib_of(at, prt)? else {
            if T::ENABLED {
                sink.event(TraceEvent::ChainExhausted { at, prt, pl, ch: c });
            }
            return Ok(None);
        };
        if T::ENABLED {
            sink.event(TraceEvent::Extrib { at, prt, dest: edest, pt: ept, pl, taken: ept >= pl });
        }
        if ept >= pl {
            s.ops_counters().count_edge();
            return Ok(Some(edest));
        }
        at = edest;
    }
}

/// One valid-path step over a fallible structure: from `node` with current
/// path length `pl`, follow the edge labeled `c`. `Ok(None)` means no
/// traversable edge exists (⇒ the extended string is not a substring);
/// `Err` surfaces a storage failure mid-traversal.
#[inline]
pub fn try_step<S: FallibleSpineOps + ?Sized>(
    s: &S,
    node: NodeId,
    pl: u32,
    c: Code,
) -> Result<Option<NodeId>> {
    try_step_traced(s, &mut NoTrace, node, pl, c)
}

/// [`try_locate`] with a [`TraceSink`] attached. When the structure is
/// page-resident, buffer-pool traffic is sampled around each step and
/// emitted as [`TraceEvent::PageFetches`] (skipped entirely — including the
/// sampling — when the sink is disabled).
pub fn try_locate_traced<S: FallibleSpineOps + ?Sized, T: TraceSink + ?Sized>(
    s: &S,
    sink: &mut T,
    pattern: &[Code],
) -> Result<Option<NodeId>> {
    // Word-packed fast path: only untraced (a recording sink needs the
    // per-decision event stream the scalar walk emits), and only when both
    // the structure packs its backbone labels and every pattern code fits
    // the packing (a separator would not).
    if !T::ENABLED {
        if let Some(bits) = s.backbone_packing() {
            if let Some(packed) = PackedText::from_codes(bits, pattern) {
                return try_locate_packed(s, &packed, pattern);
            }
        }
    }
    let mut node = ROOT;
    for (pl, &c) in pattern.iter().enumerate() {
        let before = if T::ENABLED { s.storage_counters() } else { None };
        let stepped = try_step_traced(s, sink, node, pl as u32, c)?;
        if let Some(e) = crate::trace::page_delta_event(s, before) {
            sink.event(e);
        }
        match stepped {
            Some(next) => node = next,
            None => return Ok(None),
        }
    }
    Ok(Some(node))
}

/// The word-packed valid-path walk. Vertebra runs — the only edges a
/// backbone-label compare can take — are matched a `u64` word at a time via
/// [`FallibleSpineOps::try_label_run`]; the first position the run cannot
/// absorb falls back to the scalar [`try_step`], which handles the rib/
/// extrib machinery (and its own counting). A run of `r` matches is
/// accounted as `r` node checks + `r` edges, exactly what `r` scalar
/// vertebra steps would record, so Table-6 counters are path-identical.
fn try_locate_packed<S: FallibleSpineOps + ?Sized>(
    s: &S,
    packed: &PackedText,
    pattern: &[Code],
) -> Result<Option<NodeId>> {
    let mut node = ROOT;
    let mut pl = 0usize;
    while pl < pattern.len() {
        let run = s.try_label_run(node, packed, pl)?;
        if run > 0 {
            s.ops_counters().count_node_checks(run as u64);
            s.ops_counters().count_edges(run as u64);
            node += run as NodeId;
            pl += run;
            if pl == pattern.len() {
                break;
            }
        }
        // The vertebra at `node` cannot extend the match (that is why the
        // run stopped), so this resolves via rib/extrib — or rejects.
        match try_step(s, node, pl as u32, pattern[pl])? {
            Some(next) => {
                node = next;
                pl += 1;
            }
            None => return Ok(None),
        }
    }
    Ok(Some(node))
}

/// Walk the valid path for `pattern` over a fallible structure. Returns the
/// end node of the pattern's first occurrence, `Ok(None)` if the pattern
/// does not occur, or `Err` on a storage failure.
pub fn try_locate<S: FallibleSpineOps + ?Sized>(s: &S, pattern: &[Code]) -> Result<Option<NodeId>> {
    try_locate_traced(s, &mut NoTrace, pattern)
}

/// One valid-path step: from `node` with current path length `pl`, follow
/// the edge labeled `c`. Returns the destination, or `None` if no
/// traversable edge exists (⇒ the extended string is not a substring).
#[inline]
pub fn step<S: SpineOps + ?Sized>(s: &S, node: NodeId, pl: u32, c: Code) -> Option<NodeId> {
    try_step(&Infallible(s), node, pl, c).expect("in-memory SPINE ops are infallible")
}

/// Walk the valid path for `pattern`. Returns the end node — which, by the
/// SPINE invariant, is the 1-based end position of the pattern's first
/// occurrence — or `None` if the pattern does not occur.
pub fn locate<S: SpineOps + ?Sized>(s: &S, pattern: &[Code]) -> Option<NodeId> {
    try_locate(&Infallible(s), pattern).expect("in-memory SPINE ops are infallible")
}

impl Spine {
    /// Walk the valid path for `pattern`; see [`locate`].
    pub fn locate(&self, pattern: &[Code]) -> Option<NodeId> {
        locate(self, pattern)
    }
}

impl StringIndex for Spine {
    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn text_len(&self) -> usize {
        self.len()
    }

    fn symbol_at(&self, pos: usize) -> Code {
        self.nodes()[pos + 1].vertebra_cl
    }

    fn find_first(&self, pattern: &[Code]) -> Option<usize> {
        self.locate(pattern).map(|end| end as usize - pattern.len())
    }

    fn find_all(&self, pattern: &[Code]) -> Vec<usize> {
        if pattern.is_empty() {
            return Vec::new();
        }
        crate::occurrences::find_all_ends(self, pattern)
            .into_iter()
            .map(|end| end as usize - pattern.len())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_spine() -> (Alphabet, Spine) {
        let a = Alphabet::dna();
        let s = Spine::build_from_bytes(a.clone(), b"AACCACAACA").unwrap();
        (a, s)
    }

    fn enc(a: &Alphabet, s: &[u8]) -> Vec<Code> {
        a.encode(s).unwrap()
    }

    #[test]
    fn locate_returns_first_occurrence_end() {
        let (a, s) = paper_spine();
        assert_eq!(s.locate(&enc(&a, b"A")), Some(1));
        assert_eq!(s.locate(&enc(&a, b"CA")), Some(5));
        assert_eq!(s.locate(&enc(&a, b"AACCACAACA")), Some(10));
        assert_eq!(s.locate(&enc(&a, b"ACAA")), Some(8));
        assert_eq!(s.locate(&enc(&a, b"")), Some(0));
    }

    #[test]
    fn paper_false_positive_is_rejected() {
        // §2.1/§4: "accaa" appears to have a path but the rib's PT of 2 is
        // less than the pathlength of 4, so it must be rejected.
        let (a, s) = paper_spine();
        assert_eq!(s.locate(&enc(&a, b"ACCAA")), None);
        assert!(!s.contains(&enc(&a, b"ACCAA")));
        // Its prefix "acca" is real.
        assert_eq!(s.locate(&enc(&a, b"ACCA")), Some(5));
    }

    #[test]
    fn extrib_chain_traversal_during_search() {
        // Walk "ACA" explicitly: A→1; C: rib at 1 → 3 (pt 1 ≥ 1); A: at
        // node 3 pl=2 > rib.pt=1 → extrib chain: 5's extrib (prt 1, pt 2 ≥
        // 2) → node 7.
        let (a, s) = paper_spine();
        assert_eq!(s.locate(&enc(&a, b"ACA")), Some(7));
        // And "ACAA" continues with the vertebra 7→8.
        assert_eq!(s.locate(&enc(&a, b"ACAA")), Some(8));
    }

    #[test]
    fn find_first_offsets() {
        let (a, s) = paper_spine();
        assert_eq!(s.find_first(&enc(&a, b"CA")), Some(3));
        assert_eq!(s.find_first(&enc(&a, b"AAC")), Some(0));
        assert_eq!(s.find_first(&enc(&a, b"G")), None);
        assert_eq!(s.find_first(&enc(&a, b"CAACA")), Some(5));
    }

    #[test]
    fn counters_accumulate() {
        let (a, s) = paper_spine();
        s.counters().reset();
        s.locate(&enc(&a, b"ACCA"));
        assert!(s.counters().nodes_checked() >= 4);
    }

    #[test]
    fn all_substrings_found_none_invented() {
        // Exhaustive check on the paper string for every candidate string
        // up to length 4.
        let (a, s) = paper_spine();
        let text = b"AACCACAACA";
        let is_sub = |p: &[u8]| text.windows(p.len()).any(|w| w == p);
        let mut stack: Vec<Vec<u8>> = vec![vec![]];
        while let Some(p) = stack.pop() {
            if p.len() >= 4 {
                continue;
            }
            for ch in [b'A', b'C', b'G', b'T'] {
                let mut q = p.clone();
                q.push(ch);
                assert_eq!(
                    s.contains(&enc(&a, &q)),
                    is_sub(&q),
                    "mismatch on {:?}",
                    String::from_utf8_lossy(&q)
                );
                stack.push(q);
            }
        }
    }
}
