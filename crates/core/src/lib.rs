//! # SPINE: a horizontally-compacted trie index for strings
//!
//! Reproduction of *"SPINE: Putting Backbone into String Indexing"*
//! (Neelapala, Mittal, Haritsa — ICDE 2004).
//!
//! A suffix **trie** holds every suffix of a text on its own root-to-leaf
//! path. Suffix *trees* compact the trie **vertically** (unary nodes merge
//! into their parents). SPINE compacts it **horizontally**: identical
//! character patterns across different paths are merged, all the way down to
//! the logical extreme — a single linear chain of nodes (the *backbone*),
//! one node per text character.
//!
//! A path from the root spelling `w` exists iff `w` is a substring of the
//! text, and it ends at the node whose id equals the end position of the
//! *first occurrence* of `w` (this crate's tests machine-check that
//! invariant against a naive trie). Because path merging alone would admit
//! strings that never occur (false positives), every rib/extrib edge carries
//! a numeric *pathlength threshold* (PT) deciding when it may be traversed.
//!
//! ## Structure
//!
//! * **Backbone / vertebras** — node `i` represents the length-`i` prefix;
//!   the vertebra `i → i+1` is labeled with character `i+1`. The text is
//!   recoverable from the index ([`Spine::recover_text`]), so the original
//!   string need not be kept — a property suffix trees lack.
//! * **Links** (upstream) — node `i`'s link points to the first-occurrence
//!   end of the longest suffix of prefix `i` that occurred earlier; its
//!   label **LEL** is that suffix's length. Links drive construction and let
//!   searches process whole *sets* of suffixes per step.
//! * **Ribs** (downstream) — record first-time extensions of
//!   early-terminating suffixes; labeled with a character and a **PT**.
//! * **Extribs** — extend a rib whose PT is too small; chained, labeled
//!   **PT** plus **PRT** (the parent rib's PT, identifying the chain).
//!
//! ## Quick start
//!
//! ```
//! use spine::Spine;
//! use strindex::{Alphabet, StringIndex};
//!
//! let alphabet = Alphabet::dna();
//! let text = alphabet.encode(b"AACCACAACA").unwrap();
//! let index = Spine::build(alphabet.clone(), &text).unwrap();
//!
//! let pattern = alphabet.encode(b"CA").unwrap();
//! assert_eq!(index.find_all(&pattern), vec![3, 5, 8]);
//! // The paper's false-positive example: ACCAA is *not* a substring, even
//! // though an unlabeled path for it would exist after merging.
//! assert!(!index.contains(&alphabet.encode(b"ACCAA").unwrap()));
//! ```
//!
//! Modules: [`build`] (online construction), [`search`] (valid-path
//! traversal), [`engine`] (concurrent batched query serving),
//! [`occurrences`] (the all-occurrence backbone scan),
//! [`matching`] (matching statistics & maximal matches), [`compact`] (the
//! §5 Link-Table/Rib-Table layout, < 12 bytes per character), [`disk`]
//! (page-resident engine), [`generalized`] (multi-string indexes),
//! [`segments`] (crash-safe LSM of immutable sealed segments with atomic
//! manifest commit), [`prefix`] (prefix partitioning), [`stats`] (the
//! paper's measurement hooks), [`observe`] (build-phase observability),
//! [`trace`] (per-query EXPLAIN tracing and heatmaps), [`verify`]
//! (invariant checker).

pub mod approx;
pub mod build;
pub mod compact;
pub mod disk;
pub mod engine;
pub mod generalized;
pub mod hot;
pub mod journal;
pub mod manifest;
pub mod matching;
pub mod node;
pub mod observe;
pub mod occurrences;
pub mod ops;
pub mod prefix;
pub mod repeats;
pub mod search;
pub mod segments;
pub mod stats;
pub mod trace;
pub mod verify;

pub use approx::ApproxMatch;
pub use build::Spine;
pub use compact::CompactSpine;
pub use disk::{DiskSpine, PageMap, SealedCensus, DISK_FORMAT_VERSION};
pub use engine::{
    CompletionHook, EngineConfig, MetricsSnapshot, PanicHook, QueryEngine, QueryOutcome,
    QueryResult, ServeIndex, ShardedEngine, ShardedOutcome, ShardedResult, ShedPolicy, SubmitError,
};
pub use generalized::{DocMatch, GeneralizedSpine};
pub use hot::HotSet;
pub use journal::{JournalEvent, JournalKind, JOURNAL_FILE, JOURNAL_VERSION};
pub use manifest::{Manifest, SegmentEntry, MANIFEST_VERSION};
pub use node::{Extrib, Node, NodeId, Rib, ROOT};
pub use observe::{
    BuildEvent, BuildObserver, BuildPhase, BuildProgress, BuildStats, MemBreakdown, MergeObserver,
    MergePhase, MergeTee, MergeTimes, NoBuildObserver, NoMergeObserver, ProgressReport, Tee,
};
pub use ops::{FallibleSpineOps, Infallible, SpineOps};
pub use prefix::{PrefixView, SpinePrefix};
pub use search::{locate, step, try_locate, try_step};
pub use segments::{
    spawn_merger, IoGate, MergeHandle, SegmentConfig, SegmentedSpine, SegmentsSnapshot,
};
pub use strindex::telemetry;
pub use trace::{
    explain, Heatmap, NoTrace, QueryTrace, RecordingSink, TraceEvent, TraceSink,
    DEFAULT_TRACE_CAPACITY,
};
