//! Property tests: SPINE vs the naive trie/scan oracles.
//!
//! These machine-check the paper's central claims on randomized inputs:
//! no false positives, no false negatives, first-occurrence addressing,
//! structural invariants, prefix partitioning, and reference/compact layout
//! equivalence.

use proptest::prelude::*;
use spine::ops::SpineOps;
use spine::{CompactSpine, Spine};
use strindex::{Alphabet, Code, MatchingIndex, OnlineIndex, StringIndex};
use suffix_trie::{NaiveIndex, SuffixTrie};

/// Strategy: DNA code strings of bounded length.
fn dna_codes(max_len: usize) -> impl Strategy<Value = Vec<Code>> {
    prop::collection::vec(0u8..4, 0..=max_len)
}

/// Strategy: low-entropy DNA (binary sub-alphabet) — maximizes repeats and
/// therefore rib/extrib density.
fn binary_codes(max_len: usize) -> impl Strategy<Value = Vec<Code>> {
    prop::collection::vec(0u8..2, 0..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn substring_language_equals_oracle(text in binary_codes(40)) {
        let a = Alphabet::dna();
        let s = Spine::build(a.clone(), &text).unwrap();
        let trie = SuffixTrie::build(a.clone(), &text);
        // Every string up to length 6 over the binary sub-alphabet.
        for len in 1..=6usize {
            for bits in 0..(1u32 << len) {
                let p: Vec<Code> = (0..len).map(|i| ((bits >> i) & 1) as Code).collect();
                prop_assert_eq!(
                    s.contains(&p),
                    trie.contains(&p),
                    "pattern {:?}", p
                );
            }
        }
    }

    #[test]
    fn locate_equals_first_occurrence_end(text in dna_codes(60)) {
        let a = Alphabet::dna();
        let s = Spine::build(a.clone(), &text).unwrap();
        let trie = SuffixTrie::build(a.clone(), &text);
        // Check on every actual substring (sampled: all windows).
        for start in 0..text.len() {
            for end in start + 1..=text.len().min(start + 12) {
                let p = &text[start..end];
                prop_assert_eq!(
                    s.locate(p),
                    trie.first_occurrence_end(p),
                    "window {}..{}", start, end
                );
            }
        }
    }

    #[test]
    fn structural_invariants_hold(text in dna_codes(50)) {
        let a = Alphabet::dna();
        let s = Spine::build(a.clone(), &text).unwrap();
        prop_assert_eq!(s.verify(), vec![]);
    }

    #[test]
    fn find_all_matches_scan(text in binary_codes(50), pat in binary_codes(5)) {
        let a = Alphabet::dna();
        let s = Spine::build(a.clone(), &text).unwrap();
        let naive = NaiveIndex::new(a.clone(), &text);
        if !pat.is_empty() {
            prop_assert_eq!(s.find_all(&pat), naive.find_all(&pat));
        }
    }

    #[test]
    fn matching_statistics_match_naive(
        text in dna_codes(60),
        query in dna_codes(40),
    ) {
        let a = Alphabet::dna();
        let s = Spine::build(a.clone(), &text).unwrap();
        let naive = NaiveIndex::new(a.clone(), &text);
        prop_assert_eq!(s.matching_statistics(&query), naive.matching_statistics(&query));
    }

    #[test]
    fn maximal_matches_match_naive(
        text in binary_codes(50),
        query in binary_codes(30),
        threshold in 1usize..5,
    ) {
        let a = Alphabet::dna();
        let s = Spine::build(a.clone(), &text).unwrap();
        let naive = NaiveIndex::new(a.clone(), &text);
        prop_assert_eq!(
            s.maximal_matches(&query, threshold),
            naive.maximal_matches(&query, threshold)
        );
    }

    #[test]
    fn compact_layout_is_equivalent(text in binary_codes(80)) {
        let a = Alphabet::dna();
        let r = Spine::build(a.clone(), &text).unwrap();
        let c = CompactSpine::build(a.clone(), &text).unwrap();
        prop_assert_eq!(c.recover_text(), r.recover_text());
        for node in 0..=text.len() as u32 {
            if node != 0 {
                prop_assert_eq!(r.link_of(node), c.link_of(node));
            }
            for code in 0..4u8 {
                prop_assert_eq!(r.rib_of(node, code), c.rib_of(node, code));
            }
        }
    }

    #[test]
    fn prefix_view_equals_fresh_build(text in binary_codes(40), cut in 0usize..40) {
        let a = Alphabet::dna();
        let s = Spine::build(a.clone(), &text).unwrap();
        let k = cut.min(text.len());
        let fresh = Spine::build(a.clone(), &text[..k]).unwrap();
        let view = s.prefix(k);
        for len in 1..=4usize {
            for bits in 0..(1u32 << len) {
                let p: Vec<Code> = (0..len).map(|i| ((bits >> i) & 1) as Code).collect();
                prop_assert_eq!(view.contains(&p), fresh.contains(&p), "pattern {:?}", p);
                prop_assert_eq!(view.find_all(&p), fresh.find_all(&p));
            }
        }
    }

    #[test]
    fn online_construction_is_incremental(text in dna_codes(30)) {
        // After each push, the index must already answer correctly for the
        // prefix built so far (the online property).
        let a = Alphabet::dna();
        let mut s = Spine::new(a.clone());
        for (i, &c) in text.iter().enumerate() {
            s.push(c).unwrap();
            let prefix = &text[..=i];
            let naive = NaiveIndex::new(a.clone(), prefix);
            // Check a few windows of the prefix.
            let w = prefix.len().min(4);
            let p = &prefix[prefix.len() - w..];
            prop_assert_eq!(s.find_first(p), naive.find_first(p));
        }
    }

    #[test]
    fn recover_text_round_trips(text in dna_codes(100)) {
        let a = Alphabet::dna();
        let s = Spine::build(a.clone(), &text).unwrap();
        prop_assert_eq!(s.recover_text(), text);
    }
}

/// Brute-force Hamming scan for the approximate-search property.
fn naive_hamming(text: &[Code], pattern: &[Code], k: u32) -> Vec<(usize, u32)> {
    if pattern.is_empty() || pattern.len() > text.len() {
        return Vec::new();
    }
    (0..=text.len() - pattern.len())
        .filter_map(|i| {
            let miss =
                text[i..i + pattern.len()].iter().zip(pattern).filter(|(a, b)| a != b).count()
                    as u32;
            (miss <= k).then_some((i, miss))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hamming_search_matches_naive(
        text in binary_codes(60),
        pattern in binary_codes(8),
        k in 0u32..3,
    ) {
        let a = Alphabet::dna();
        let s = Spine::build(a.clone(), &text).unwrap();
        let got: Vec<(usize, u32)> = s
            .find_all_hamming(&pattern, k)
            .into_iter()
            .map(|m| (m.start, m.mismatches))
            .collect();
        prop_assert_eq!(got, naive_hamming(&text, &pattern, k));
    }

    #[test]
    fn compact_persistence_round_trips(text in dna_codes(120)) {
        let a = Alphabet::dna();
        let c = CompactSpine::build(a.clone(), &text).unwrap();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let d = CompactSpine::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(d.recover_text(), text.clone());
        // The loaded index answers like the original on sampled windows.
        for start in (0..text.len()).step_by(7) {
            let end = (start + 6).min(text.len());
            let w = &text[start..end];
            prop_assert_eq!(d.find_all(w), c.find_all(w));
        }
    }

    #[test]
    fn generalized_index_localizes_correctly(
        docs in prop::collection::vec(binary_codes(25), 1..6),
        pat in binary_codes(4),
    ) {
        let a = Alphabet::dna();
        let mut g = spine::GeneralizedSpine::new(a.clone());
        for d in &docs {
            g.add_document(d).unwrap();
        }
        if pat.is_empty() {
            return Ok(());
        }
        let got = g.find_all(&pat);
        // Oracle: scan each document independently.
        let mut want = Vec::new();
        for (di, d) in docs.iter().enumerate() {
            if pat.len() > d.len() {
                continue;
            }
            for off in 0..=d.len() - pat.len() {
                if &d[off..off + pat.len()] == pat.as_slice() {
                    want.push(spine::generalized::DocMatch { doc: di, offset: off });
                }
            }
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn longest_repeated_substring_matches_naive(text in binary_codes(60)) {
        let a = Alphabet::dna();
        let s = Spine::build(a.clone(), &text).unwrap();
        let naive = {
            let mut best = 0usize;
            for i in 0..text.len() {
                for j in i + 1..text.len() {
                    let mut k = 0;
                    while j + k < text.len() && text[i + k] == text[j + k] {
                        k += 1;
                    }
                    best = best.max(k);
                }
            }
            best
        };
        prop_assert_eq!(s.longest_repeated_substring().map_or(0, |m| m.len), naive);
    }

    #[test]
    fn mums_are_unique_and_maximal(
        text in dna_codes(80),
        query in dna_codes(50),
    ) {
        let a = Alphabet::dna();
        let data = Spine::build(a.clone(), &text).unwrap();
        let qidx = Spine::build(a.clone(), &query).unwrap();
        for m in strindex::maximal_unique_matches(&data, &qidx, &query, 2) {
            let w = &query[m.query_start..m.query_start + m.len];
            // Content, uniqueness, and maximality re-checked from scratch.
            prop_assert_eq!(&text[m.data_start..m.data_start + m.len], w);
            prop_assert_eq!(data.find_all(w).len(), 1);
            prop_assert_eq!(qidx.find_all(w).len(), 1);
            if m.query_start > 0 && m.data_start > 0 {
                prop_assert_ne!(query[m.query_start - 1], text[m.data_start - 1]);
            }
            let (qe, de) = (m.query_start + m.len, m.data_start + m.len);
            if qe < query.len() && de < text.len() {
                prop_assert_ne!(query[qe], text[de]);
            }
        }
    }
}
