//! Scan-based oracle: brute-force answers over the raw text.
//!
//! Slow (every query scans the text) but self-evidently correct; the
//! cross-engine equivalence tests hold SPINE, the suffix tree, and the suffix
//! array to this engine's answers on randomly generated inputs.

use strindex::{Alphabet, Code, MatchingIndex, MatchingStats, MaximalMatch, StringIndex};

/// Return all start offsets of `pattern` in `text` by direct scan.
pub fn scan_all(text: &[Code], pattern: &[Code]) -> Vec<usize> {
    if pattern.is_empty() || pattern.len() > text.len() {
        return Vec::new();
    }
    (0..=text.len() - pattern.len()).filter(|&i| &text[i..i + pattern.len()] == pattern).collect()
}

/// The brute-force reference engine.
pub struct NaiveIndex {
    alphabet: Alphabet,
    text: Vec<Code>,
}

impl NaiveIndex {
    /// Wrap an encoded text.
    pub fn new(alphabet: Alphabet, text: &[Code]) -> Self {
        NaiveIndex { alphabet, text: text.to_vec() }
    }

    /// The indexed text.
    pub fn text(&self) -> &[Code] {
        &self.text
    }

    /// Longest common extension of `query[q..]` and `text[t..]`.
    pub fn lce(&self, query: &[Code], q: usize, t: usize) -> usize {
        query[q..].iter().zip(&self.text[t..]).take_while(|(a, b)| a == b).count()
    }
}

impl StringIndex for NaiveIndex {
    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn text_len(&self) -> usize {
        self.text.len()
    }

    fn symbol_at(&self, pos: usize) -> Code {
        self.text[pos]
    }

    fn find_first(&self, pattern: &[Code]) -> Option<usize> {
        if pattern.is_empty() {
            return Some(0);
        }
        if pattern.len() > self.text.len() {
            return None;
        }
        (0..=self.text.len() - pattern.len()).find(|&i| &self.text[i..i + pattern.len()] == pattern)
    }

    fn find_all(&self, pattern: &[Code]) -> Vec<usize> {
        scan_all(&self.text, pattern)
    }
}

impl MatchingIndex for NaiveIndex {
    fn matching_statistics(&self, query: &[Code]) -> MatchingStats {
        let m = query.len();
        let mut lengths = vec![0u32; m + 1];
        let mut first_end = vec![0u32; m + 1];
        for e in 1..=m {
            // Longest suffix of query[..e] occurring in text, by brute force:
            // try lengths from the previous value + 1 downward (ms can grow
            // by at most one per step, so start from lengths[e-1]+1).
            let mut best = 0usize;
            let mut best_end = 0usize;
            let cap = (lengths[e - 1] as usize + 1).min(e);
            for len in (1..=cap).rev() {
                if let Some(start) = self.find_first(&query[e - len..e]) {
                    best = len;
                    best_end = start + len;
                    break;
                }
            }
            lengths[e] = best as u32;
            first_end[e] = best_end as u32;
        }
        MatchingStats { lengths, first_end }
    }

    fn maximal_matches(&self, query: &[Code], min_len: usize) -> Vec<MaximalMatch> {
        let stats = self.matching_statistics(query);
        let mut out = Vec::new();
        for (qs, len, _) in stats.right_maximal(min_len) {
            for ds in self.find_all(&query[qs..qs + len]) {
                out.push(MaximalMatch { query_start: qs, data_start: ds, len });
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dna(s: &str) -> (Alphabet, Vec<Code>) {
        let a = Alphabet::dna();
        let codes = a.encode(s.as_bytes()).unwrap();
        (a, codes)
    }

    #[test]
    fn scan_all_finds_overlapping() {
        let (_, text) = dna("AAAA");
        let (_, pat) = dna("AA");
        assert_eq!(scan_all(&text, &pat), vec![0, 1, 2]);
        assert_eq!(scan_all(&text, &[]), Vec::<usize>::new());
    }

    #[test]
    fn find_first_and_all_agree() {
        let (a, text) = dna("ACGTACGTAC");
        let idx = NaiveIndex::new(a.clone(), &text);
        let pat = a.encode(b"AC").unwrap();
        assert_eq!(idx.find_first(&pat), Some(0));
        assert_eq!(idx.find_all(&pat), vec![0, 4, 8]);
        let absent = a.encode(b"GG").unwrap();
        assert_eq!(idx.find_first(&absent), None);
        assert!(idx.find_all(&absent).is_empty());
    }

    #[test]
    fn matching_statistics_small() {
        // text = ACGT, query = CGCA
        let (a, text) = dna("ACGT");
        let idx = NaiveIndex::new(a.clone(), &text);
        let query = a.encode(b"CGCA").unwrap();
        let ms = idx.matching_statistics(&query);
        // e=1: "C" occurs (ends at 2). e=2: "CG" occurs (ends 3).
        // e=3: suffixes of CGC: "GC" no, "C" yes (ends 2).
        // e=4: "CA" no, "A" yes (ends 1).
        assert_eq!(ms.lengths, vec![0, 1, 2, 1, 1]);
        assert_eq!(ms.first_end, vec![0, 2, 3, 2, 1]);
    }

    #[test]
    fn maximal_matches_include_repetitions() {
        let (a, text) = dna("ACACAC");
        let idx = NaiveIndex::new(a.clone(), &text);
        let query = a.encode(b"ACAT").unwrap();
        // Longest match "ACA" (ends at query offset 3, right-maximal since T
        // breaks it); text occurrences of ACA at 0 and 2.
        let mm = idx.maximal_matches(&query, 3);
        assert_eq!(
            mm,
            vec![
                MaximalMatch { query_start: 0, data_start: 0, len: 3 },
                MaximalMatch { query_start: 0, data_start: 2, len: 3 },
            ]
        );
    }

    #[test]
    fn lce_counts_shared_prefix() {
        let (a, text) = dna("ACGTAC");
        let idx = NaiveIndex::new(a, &text);
        let q = idx.text().to_vec();
        assert_eq!(idx.lce(&q, 0, 4), 2); // "AC" == "AC"
        assert_eq!(idx.lce(&q, 0, 0), 6);
        assert_eq!(idx.lce(&q, 1, 0), 0);
    }

    #[test]
    fn empty_pattern_contract() {
        let (a, text) = dna("ACG");
        let idx = NaiveIndex::new(a, &text);
        assert_eq!(idx.find_first(&[]), Some(0));
        assert!(idx.contains(&[]));
    }
}
