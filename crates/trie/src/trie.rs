//! The explicit suffix trie (Figure 1 of the paper).
//!
//! Every suffix of the text is inserted character by character; nothing is
//! compacted. Each trie node additionally records the smallest text position
//! at which the path string ends — the *first occurrence end* — which is
//! precisely the address SPINE's horizontal compaction assigns to the merged
//! node, making this the oracle for SPINE's first-occurrence invariant.

use strindex::{Alphabet, Code, StringIndex};

/// One trie node: children indexed by symbol code, plus bookkeeping.
#[derive(Debug, Clone)]
struct TrieNode {
    /// Child node id per symbol code (code space of the alphabet).
    children: Vec<Option<u32>>,
    /// Smallest text end position (1-based) over all suffix insertions that
    /// pass through / end at this node's path string.
    first_end: u32,
    /// Number of suffixes whose path passes through this node = number of
    /// occurrences of the path string.
    occurrences: u32,
}

/// An explicit suffix trie over one encoded text.
pub struct SuffixTrie {
    alphabet: Alphabet,
    text: Vec<Code>,
    nodes: Vec<TrieNode>,
}

impl SuffixTrie {
    /// Build the trie of all suffixes of `text`. Space is O(n²) in the worst
    /// case: intended for strings up to a few thousand symbols.
    pub fn build(alphabet: Alphabet, text: &[Code]) -> Self {
        let width = alphabet.code_space();
        let root = TrieNode { children: vec![None; width], first_end: 0, occurrences: 0 };
        let mut t = SuffixTrie { alphabet, text: text.to_vec(), nodes: vec![root] };
        for start in 0..text.len() {
            let mut cur = 0u32;
            for (off, &c) in text[start..].iter().enumerate() {
                let end = (start + off + 1) as u32;
                let next = match t.nodes[cur as usize].children[c as usize] {
                    Some(n) => {
                        let node = &mut t.nodes[n as usize];
                        node.first_end = node.first_end.min(end);
                        node.occurrences += 1;
                        n
                    }
                    None => {
                        let id = t.nodes.len() as u32;
                        t.nodes.push(TrieNode {
                            children: vec![None; t.alphabet.code_space()],
                            first_end: end,
                            occurrences: 1,
                        });
                        t.nodes[cur as usize].children[c as usize] = Some(id);
                        id
                    }
                };
                cur = next;
            }
        }
        t
    }

    /// Number of trie nodes, including the root. For `aaccacaaca` this is
    /// the node count of Figure 1.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Walk the trie along `pattern`; `None` if the pattern is not a
    /// substring.
    fn walk(&self, pattern: &[Code]) -> Option<u32> {
        let mut cur = 0u32;
        for &c in pattern {
            cur = self.nodes[cur as usize].children.get(c as usize).copied().flatten()?;
        }
        Some(cur)
    }

    /// End position (1-based) of the first occurrence of `pattern`, or
    /// `None` if absent. This is the value SPINE's merged node id must equal.
    pub fn first_occurrence_end(&self, pattern: &[Code]) -> Option<u32> {
        if pattern.is_empty() {
            return Some(0);
        }
        self.walk(pattern).map(|n| self.nodes[n as usize].first_end)
    }

    /// Number of occurrences of `pattern` in the text.
    pub fn occurrence_count(&self, pattern: &[Code]) -> usize {
        if pattern.is_empty() {
            return self.text.len() + 1;
        }
        self.walk(pattern).map_or(0, |n| self.nodes[n as usize].occurrences as usize)
    }

    /// Enumerate every distinct substring of the text with length ≤
    /// `max_len` (in code form). Used by property tests to compare substring
    /// languages across engines.
    pub fn substrings_up_to(&self, max_len: usize) -> Vec<Vec<Code>> {
        let mut out = Vec::new();
        let mut stack: Vec<(u32, Vec<Code>)> = vec![(0, Vec::new())];
        while let Some((node, path)) = stack.pop() {
            if !path.is_empty() {
                out.push(path.clone());
            }
            if path.len() == max_len {
                continue;
            }
            for (c, child) in self.nodes[node as usize].children.iter().enumerate() {
                if let Some(n) = child {
                    let mut p = path.clone();
                    p.push(c as Code);
                    stack.push((*n, p));
                }
            }
        }
        out.sort();
        out
    }
}

impl StringIndex for SuffixTrie {
    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn text_len(&self) -> usize {
        self.text.len()
    }

    fn symbol_at(&self, pos: usize) -> Code {
        self.text[pos]
    }

    fn find_first(&self, pattern: &[Code]) -> Option<usize> {
        if pattern.is_empty() {
            return Some(0);
        }
        self.first_occurrence_end(pattern).map(|e| e as usize - pattern.len())
    }

    fn find_all(&self, pattern: &[Code]) -> Vec<usize> {
        // The trie stores counts, not positions; enumerate by text scan
        // (this engine is an oracle, simplicity over speed).
        crate::naive::scan_all(&self.text, pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dna(s: &str) -> (Alphabet, Vec<Code>) {
        let a = Alphabet::dna();
        let codes = a.encode(s.as_bytes()).unwrap();
        (a, codes)
    }

    /// The load harness serves this trie from a worker pool behind a
    /// shared reference; the serving contract is thread-safety plus sorted
    /// occurrence lists.
    #[test]
    fn upholds_the_serving_contract() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SuffixTrie>();
        let (a, text) = dna("ACACACACGTACAC");
        let t = SuffixTrie::build(a.clone(), &text);
        let hits = t.find_all(&a.encode(b"AC").unwrap());
        assert!(hits.windows(2).all(|w| w[0] < w[1]), "occurrences must be sorted: {hits:?}");
    }

    #[test]
    fn paper_example_node_count() {
        // Figure 1 of the paper draws the trie for "aaccacaaca" — count the
        // distinct substrings (each is one node) + root.
        let (a, text) = dna("AACCACAACA");
        let t = SuffixTrie::build(a, &text);
        let distinct = t.substrings_up_to(text.len()).len();
        assert_eq!(t.node_count(), distinct + 1);
    }

    #[test]
    fn first_occurrence_ends() {
        let (a, text) = dna("AACCACAACA");
        let t = SuffixTrie::build(a.clone(), &text);
        // "A" first ends at position 1, "CA" at 5, "AC" at 3.
        assert_eq!(t.first_occurrence_end(&a.encode(b"A").unwrap()), Some(1));
        assert_eq!(t.first_occurrence_end(&a.encode(b"CA").unwrap()), Some(5));
        assert_eq!(t.first_occurrence_end(&a.encode(b"AC").unwrap()), Some(3));
        assert_eq!(t.first_occurrence_end(&a.encode(b"ACCAA").unwrap()), None);
    }

    #[test]
    fn occurrence_counts() {
        let (a, text) = dna("AACCACAACA");
        let t = SuffixTrie::build(a.clone(), &text);
        assert_eq!(t.occurrence_count(&a.encode(b"CA").unwrap()), 3);
        assert_eq!(t.occurrence_count(&a.encode(b"AACCACAACA").unwrap()), 1);
        assert_eq!(t.occurrence_count(&a.encode(b"G").unwrap()), 0);
    }

    #[test]
    fn string_index_contract() {
        let (a, text) = dna("AACCACAACA");
        let t = SuffixTrie::build(a.clone(), &text);
        let ca = a.encode(b"CA").unwrap();
        assert!(t.contains(&ca));
        assert_eq!(t.find_first(&ca), Some(3)); // CA at offsets 3, 5, 8
        assert_eq!(t.find_all(&ca), vec![3, 5, 8]);
        assert_eq!(t.find_first(&[]), Some(0));
        assert_eq!(t.text_len(), 10);
    }

    #[test]
    fn empty_text() {
        let a = Alphabet::dna();
        let t = SuffixTrie::build(a.clone(), &[]);
        assert_eq!(t.node_count(), 1);
        assert!(!t.contains(&[0]));
    }
}
