//! Correctness references for the SPINE reproduction.
//!
//! Two deliberately simple engines live here:
//!
//! * [`SuffixTrie`] — the explicit, uncompacted trie of Figure 1 of the
//!   paper: every suffix inserted character by character. Quadratic space,
//!   only usable on small strings, but structurally transparent — the
//!   property tests compare SPINE's valid-path language against it, and the
//!   experiment harness uses its node count to show what vertical
//!   (suffix-tree) and horizontal (SPINE) compaction each save.
//! * [`NaiveIndex`] — a scan-based oracle that answers every query by brute
//!   force over the raw text. It implements the same [`strindex::StringIndex`] /
//!   [`strindex::MatchingIndex`] traits as the real engines, so the cross-engine
//!   equivalence tests in `tests/` can hold all engines to its answers.

pub mod naive;
pub mod trie;

pub use naive::NaiveIndex;
pub use trie::SuffixTrie;
