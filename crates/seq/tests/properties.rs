//! Property tests for the sequence substrate.

use genseq::fasta::{read_fasta, write_fasta, Record};
use genseq::{inject_repeats, mutate, reverse_complement, rng, MutationProfile, RepeatProfile};
use proptest::prelude::*;
use strindex::{Alphabet, Code};

/// Strategy: FASTA-safe header text (no newlines or leading '>').
fn header() -> impl Strategy<Value = String> {
    "[A-Za-z0-9_ .|-]{0,40}"
}

/// Strategy: DNA sequence bytes.
fn dna_bytes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), 0..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fasta_round_trips(
        recs in prop::collection::vec((header(), dna_bytes(200)), 1..5)
    ) {
        let records: Vec<Record> = recs
            .into_iter()
            .map(|(h, seq)| Record { header: h.trim().to_string(), seq })
            .collect();
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records).unwrap();
        let parsed = read_fasta(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(parsed, records);
    }

    #[test]
    fn revcomp_is_an_involution(seq in prop::collection::vec(0u8..4, 0..300)) {
        let a = Alphabet::dna();
        let rc = reverse_complement(&a, &seq).unwrap();
        prop_assert_eq!(reverse_complement(&a, &rc).unwrap(), seq);
    }

    #[test]
    fn alphabet_encode_decode_round_trips(bytes in dna_bytes(300)) {
        let a = Alphabet::dna();
        let codes = a.encode(&bytes).unwrap();
        prop_assert_eq!(a.decode_all(&codes), bytes);
    }

    #[test]
    fn mutate_preserves_alphabet(
        base in prop::collection::vec(0u8..4, 1..400),
        seed in 0u64..1000,
    ) {
        let out = mutate(&base, 4, &MutationProfile::default(), &mut rng(seed));
        prop_assert!(out.iter().all(|&c| c < 4));
    }

    #[test]
    fn inject_repeats_hits_requested_length(
        bg in prop::collection::vec(0u8..4, 1..200),
        len in 0usize..2000,
        seed in 0u64..1000,
    ) {
        let out: Vec<Code> =
            inject_repeats(&bg, len, 4, &RepeatProfile::default(), &mut rng(seed));
        prop_assert_eq!(out.len(), len);
        prop_assert!(out.iter().all(|&c| c < 4));
    }
}
