//! Derive a related sequence from a base sequence.
//!
//! The paper's matching experiments (Tables 5–7) run over *pairs* of related
//! genomes (e.g. data = HC21, query = HC19). Lacking real pairs, we derive
//! the query from the data by simulating evolutionary divergence: point
//! substitutions, small indels, and block rearrangements. The result shares
//! many long exact substrings with the base — exactly the workload the
//! maximal-match search is designed for.

use crate::repeats::random_other;
use rand::Rng;
use strindex::Code;

/// Parameters of the divergence simulation.
#[derive(Debug, Clone)]
pub struct MutationProfile {
    /// Per-symbol substitution probability.
    pub substitution: f64,
    /// Per-symbol probability of starting a small deletion.
    pub deletion: f64,
    /// Per-symbol probability of inserting a short random run.
    pub insertion: f64,
    /// Maximum indel length.
    pub max_indel: usize,
    /// Number of large block swaps (rearrangements) applied at the end.
    pub block_swaps: usize,
}

impl Default for MutationProfile {
    fn default() -> Self {
        MutationProfile {
            substitution: 0.01,
            deletion: 0.001,
            insertion: 0.001,
            max_indel: 20,
            block_swaps: 4,
        }
    }
}

impl MutationProfile {
    /// A heavier profile producing shorter shared substrings.
    pub fn divergent() -> Self {
        MutationProfile { substitution: 0.05, block_swaps: 16, ..Default::default() }
    }
}

/// Apply `profile` to `base`, returning the mutated relative.
pub fn mutate<R: Rng>(
    base: &[Code],
    alphabet_size: usize,
    profile: &MutationProfile,
    rng: &mut R,
) -> Vec<Code> {
    let mut out = Vec::with_capacity(base.len() + base.len() / 100);
    let mut i = 0usize;
    while i < base.len() {
        if profile.deletion > 0.0 && rng.gen_bool(profile.deletion) {
            let d = rng.gen_range(1..=profile.max_indel);
            i += d;
            continue;
        }
        if profile.insertion > 0.0 && rng.gen_bool(profile.insertion) {
            let d = rng.gen_range(1..=profile.max_indel);
            for _ in 0..d {
                out.push(rng.gen_range(0..alphabet_size) as Code);
            }
        }
        let c = base[i];
        if profile.substitution > 0.0 && rng.gen_bool(profile.substitution) {
            out.push(random_other(c, alphabet_size, rng));
        } else {
            out.push(c);
        }
        i += 1;
    }
    // Block rearrangements: swap two non-overlapping windows.
    for _ in 0..profile.block_swaps {
        if out.len() < 64 {
            break;
        }
        let w = (out.len() / 32).clamp(8, 1 << 16);
        let a = rng.gen_range(0..out.len() - w);
        let b = rng.gen_range(0..out.len() - w);
        let (lo, hi) = (a.min(b), a.max(b));
        if lo + w <= hi {
            for k in 0..w {
                out.swap(lo + k, hi + k);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{iid_sequence, rng};
    use strindex::Alphabet;

    /// Longest common substring via dynamic programming (test-only, O(n·m)).
    fn lcs_len(a: &[Code], b: &[Code]) -> usize {
        let mut prev = vec![0usize; b.len() + 1];
        let mut best = 0;
        for &ca in a {
            let mut cur = vec![0usize; b.len() + 1];
            for (j, &cb) in b.iter().enumerate() {
                if ca == cb {
                    cur[j + 1] = prev[j] + 1;
                    best = best.max(cur[j + 1]);
                }
            }
            prev = cur;
        }
        best
    }

    #[test]
    fn identity_profile_is_a_copy() {
        let a = Alphabet::dna();
        let base = iid_sequence(&a, 2_000, &mut rng(1));
        let p = MutationProfile {
            substitution: 0.0,
            deletion: 0.0,
            insertion: 0.0,
            max_indel: 1,
            block_swaps: 0,
        };
        assert_eq!(mutate(&base, 4, &p, &mut rng(2)), base);
    }

    #[test]
    fn mutant_shares_long_substrings() {
        let a = Alphabet::dna();
        let base = iid_sequence(&a, 3_000, &mut rng(3));
        let rel = mutate(&base, 4, &MutationProfile::default(), &mut rng(4));
        // With ~1 % divergence, expected shared runs are ~100 symbols.
        assert!(lcs_len(&base, &rel) >= 30, "relative should share long runs");
    }

    #[test]
    fn divergent_profile_shortens_shared_runs() {
        let a = Alphabet::dna();
        let base = iid_sequence(&a, 3_000, &mut rng(5));
        let near = mutate(&base, 4, &MutationProfile::default(), &mut rng(6));
        let far = mutate(&base, 4, &MutationProfile::divergent(), &mut rng(6));
        assert!(lcs_len(&base, &far) <= lcs_len(&base, &near));
    }

    #[test]
    fn length_stays_close() {
        let a = Alphabet::dna();
        let base = iid_sequence(&a, 10_000, &mut rng(7));
        let rel = mutate(&base, 4, &MutationProfile::default(), &mut rng(8));
        let diff = (rel.len() as i64 - base.len() as i64).unsigned_abs() as usize;
        assert!(diff < base.len() / 10, "length drifted by {diff}");
    }
}
