//! Named workload presets mirroring the paper's datasets.
//!
//! | Preset      | Paper dataset                    | Paper length | Alphabet |
//! |-------------|----------------------------------|--------------|----------|
//! | `eco-sim`   | E.coli genome                    | 3.5 M        | DNA      |
//! | `cel-sim`   | C.elegans genome                 | 15.5 M       | DNA      |
//! | `hc21-sim`  | Human chromosome 21              | 28.5 M       | DNA      |
//! | `hc19-sim`  | Human chromosome 19              | 57.5 M       | DNA      |
//! | `ecor-sim`  | E.coli residues (proteome)       | 1.5 M        | protein  |
//! | `yst-sim`   | Yeast residues (proteome)        | 3.1 M        | protein  |
//! | `dros-sim`  | Drosophila residues (proteome)   | 7.5 M        | protein  |
//!
//! Lengths are scaled by a caller-supplied factor (the experiment harness
//! defaults to 1/10 so the full suite runs on a laptop; pass `--scale 1.0`
//! for paper-size runs). Each preset fixes the generator seed, so a given
//! `(preset, scale)` pair always produces the same sequence.

use crate::markov::MarkovModel;
use crate::repeats::{inject_repeats, RepeatProfile};
use crate::rng;
use strindex::{Alphabet, Code};

/// A named synthetic dataset.
#[derive(Debug, Clone)]
pub struct Preset {
    /// Stable name (used by the experiment CLI).
    pub name: &'static str,
    /// The paper dataset this stands in for.
    pub stands_in_for: &'static str,
    /// Full (unscaled) length in symbols.
    pub full_len: usize,
    /// Whether this is a DNA or protein dataset.
    pub protein: bool,
    /// Generator seed.
    pub seed: u64,
}

const PRESETS: &[Preset] = &[
    Preset {
        name: "eco-sim",
        stands_in_for: "E.coli genome (3.5 M)",
        full_len: 3_500_000,
        protein: false,
        seed: 0xEC0,
    },
    Preset {
        name: "cel-sim",
        stands_in_for: "C.elegans genome (15.5 M)",
        full_len: 15_500_000,
        protein: false,
        seed: 0xCE1,
    },
    Preset {
        name: "hc21-sim",
        stands_in_for: "Human chromosome 21 (28.5 M)",
        full_len: 28_500_000,
        protein: false,
        seed: 0x21,
    },
    Preset {
        name: "hc19-sim",
        stands_in_for: "Human chromosome 19 (57.5 M)",
        full_len: 57_500_000,
        protein: false,
        seed: 0x19,
    },
    Preset {
        name: "ecor-sim",
        stands_in_for: "E.coli residues (1.5 M)",
        full_len: 1_500_000,
        protein: true,
        seed: 0xEC02,
    },
    Preset {
        name: "yst-sim",
        stands_in_for: "Yeast residues (3.1 M)",
        full_len: 3_100_000,
        protein: true,
        seed: 0x757,
    },
    Preset {
        name: "dros-sim",
        stands_in_for: "Drosophila residues (7.5 M)",
        full_len: 7_500_000,
        protein: true,
        seed: 0xD05,
    },
];

/// All preset names, in paper order.
pub fn preset_names() -> Vec<&'static str> {
    PRESETS.iter().map(|p| p.name).collect()
}

/// Look up a preset by name.
pub fn preset(name: &str) -> Option<&'static Preset> {
    PRESETS.iter().find(|p| p.name == name)
}

impl Preset {
    /// The alphabet this preset uses.
    pub fn alphabet(&self) -> Alphabet {
        if self.protein {
            Alphabet::protein()
        } else {
            Alphabet::dna()
        }
    }

    /// Length after applying `scale` (clamped to at least 1 000 symbols so
    /// tiny scales still exercise the repeat machinery).
    pub fn scaled_len(&self, scale: f64) -> usize {
        ((self.full_len as f64 * scale) as usize).max(1_000)
    }

    /// Generate the sequence at the given scale. Deterministic in
    /// `(self, scale)`.
    pub fn generate(&self, scale: f64) -> Vec<Code> {
        let alphabet = self.alphabet();
        let len = self.scaled_len(scale);
        let mut r = rng(self.seed);
        // Order-3 Markov background for DNA, order-1 for protein (20^3 rows
        // would be fine, but order-1 matches residue statistics well enough).
        let order = if self.protein { 1 } else { 3 };
        let skew = if self.protein { 0.25 } else { 0.35 };
        let model = MarkovModel::random(&alphabet, order, skew, &mut r);
        let bg_len = (len / 2).clamp(1_000, 4_000_000);
        let background = model.sample(bg_len, &mut r);
        // Repeat parameters calibrated so the built index reproduces the
        // paper's Table 4 shape (≈30 % of nodes carry downstream edges,
        // steeply decaying fan-out); see EXPERIMENTS.md.
        let profile = if self.protein {
            RepeatProfile {
                repeat_fraction: 0.20,
                max_segment: 800,
                divergence: 0.08,
                ..Default::default()
            }
        } else {
            RepeatProfile {
                repeat_fraction: 0.15,
                max_segment: 1_000,
                divergence: 0.08,
                ..Default::default()
            }
        };
        inject_repeats(&background, len, alphabet.size(), &profile, &mut r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_resolve() {
        for name in preset_names() {
            assert!(preset(name).is_some());
        }
        assert!(preset("nope").is_none());
        assert_eq!(preset_names().len(), 7);
    }

    #[test]
    fn generation_is_deterministic() {
        let p = preset("eco-sim").unwrap();
        let a = p.generate(0.001);
        let b = p.generate(0.001);
        assert_eq!(a, b);
        assert_eq!(a.len(), p.scaled_len(0.001));
    }

    #[test]
    fn scaled_len_is_clamped() {
        let p = preset("eco-sim").unwrap();
        assert_eq!(p.scaled_len(0.0), 1_000);
        assert_eq!(p.scaled_len(1.0), 3_500_000);
    }

    #[test]
    fn protein_presets_use_protein_alphabet() {
        let p = preset("yst-sim").unwrap();
        assert_eq!(p.alphabet().size(), 20);
        let s = p.generate(0.002);
        assert!(s.iter().all(|&c| (c as usize) < 20));
    }

    #[test]
    fn dna_presets_are_repetitive() {
        // The repeat machinery should make long duplicated runs common:
        // distinct 24-mers must be well below the count for i.i.d. data.
        let p = preset("eco-sim").unwrap();
        let s = p.generate(0.01); // 35 000 symbols
        let mut set = std::collections::HashSet::new();
        for w in s.windows(24) {
            set.insert(w.to_vec());
        }
        let distinct = set.len();
        let windows = s.len() - 23;
        assert!(
            distinct < windows * 95 / 100,
            "expected repeats: {distinct} distinct of {windows} windows"
        );
    }
}
