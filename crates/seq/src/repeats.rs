//! Repeat injection.
//!
//! Genomes are dominated by repeat families: dispersed repeats (transposable
//! elements, segmental duplications) and tandem repeats (satellites,
//! microsatellites). These long exact-or-near-exact duplications are what
//! give SPINE its structure — after an initial prefix, "the remaining part
//! mostly contains repetitions of previously occurred patterns" (paper §5.1),
//! which is why only ~30 % of nodes carry ribs and why links point upstream.
//!
//! [`inject_repeats`] rewrites a background sequence in place: with the
//! configured probability it copies an earlier segment (possibly mutated)
//! instead of keeping fresh background symbols.

use rand::Rng;
use strindex::Code;

/// Parameters of the repeat model.
#[derive(Debug, Clone)]
pub struct RepeatProfile {
    /// Fraction of the output produced by copying earlier material
    /// (0 = no repeats, 0.5 = half the genome is duplicated segments).
    pub repeat_fraction: f64,
    /// Minimum copied-segment length.
    pub min_segment: usize,
    /// Maximum copied-segment length.
    pub max_segment: usize,
    /// Per-symbol substitution rate applied to each copy (repeat families
    /// diverge over evolutionary time).
    pub divergence: f64,
    /// Probability that a copy is tandem (placed immediately after its
    /// source) rather than dispersed.
    pub tandem_prob: f64,
}

impl Default for RepeatProfile {
    fn default() -> Self {
        RepeatProfile {
            repeat_fraction: 0.45,
            min_segment: 50,
            max_segment: 5_000,
            divergence: 0.02,
            tandem_prob: 0.2,
        }
    }
}

impl RepeatProfile {
    /// A profile with no repeats at all (pure background).
    pub fn none() -> Self {
        RepeatProfile { repeat_fraction: 0.0, ..Default::default() }
    }
}

/// Build a sequence of length `len`: background symbols come from the
/// `background` iterator (e.g. a Markov sample), and repeat segments are
/// copied from the already-emitted prefix according to `profile`.
pub fn inject_repeats<R: Rng>(
    background: &[Code],
    len: usize,
    alphabet_size: usize,
    profile: &RepeatProfile,
    rng: &mut R,
) -> Vec<Code> {
    assert!(!background.is_empty(), "background must be non-empty");
    assert!(profile.min_segment >= 1 && profile.max_segment >= profile.min_segment);
    let mut out: Vec<Code> = Vec::with_capacity(len);
    let mut bg_pos = 0usize;
    // Seed with enough fresh material to copy from.
    let seed_len = profile.min_segment.min(len);
    while out.len() < seed_len {
        out.push(background[bg_pos % background.len()]);
        bg_pos += 1;
    }
    while out.len() < len {
        if rng.gen_bool(profile.repeat_fraction) {
            // Copy an earlier segment.
            let max_seg = profile.max_segment.min(out.len()).min(len - out.len()).max(1);
            let min_seg = profile.min_segment.min(max_seg);
            let seg_len = rng.gen_range(min_seg..=max_seg);
            let src = if rng.gen_bool(profile.tandem_prob) {
                out.len() - seg_len
            } else {
                rng.gen_range(0..=out.len() - seg_len)
            };
            for i in 0..seg_len {
                let mut c = out[src + i];
                if profile.divergence > 0.0 && rng.gen_bool(profile.divergence) {
                    c = random_other(c, alphabet_size, rng);
                }
                out.push(c);
            }
        } else {
            // Fresh background run.
            let run = rng.gen_range(20usize..200).min(len - out.len());
            for _ in 0..run {
                out.push(background[bg_pos % background.len()]);
                bg_pos += 1;
            }
        }
    }
    out.truncate(len);
    out
}

/// Pick a uniformly random symbol different from `c`.
pub(crate) fn random_other<R: Rng>(c: Code, alphabet_size: usize, rng: &mut R) -> Code {
    debug_assert!(alphabet_size >= 2);
    let mut n = rng.gen_range(0..alphabet_size - 1) as Code;
    if n >= c {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{iid_sequence, rng};
    use strindex::Alphabet;

    fn distinct_kmers(s: &[Code], k: usize) -> usize {
        let mut set = std::collections::HashSet::new();
        for w in s.windows(k) {
            set.insert(w.to_vec());
        }
        set.len()
    }

    #[test]
    fn produces_exact_length() {
        let a = Alphabet::dna();
        let bg = iid_sequence(&a, 10_000, &mut rng(1));
        for len in [0usize, 1, 57, 9_999, 20_000] {
            let s = inject_repeats(&bg, len, 4, &RepeatProfile::default(), &mut rng(2));
            assert_eq!(s.len(), len);
        }
    }

    #[test]
    fn repeats_reduce_kmer_diversity() {
        let a = Alphabet::dna();
        let bg = iid_sequence(&a, 60_000, &mut rng(5));
        let plain = inject_repeats(&bg, 50_000, 4, &RepeatProfile::none(), &mut rng(6));
        let repetitive = inject_repeats(
            &bg,
            50_000,
            4,
            &RepeatProfile { repeat_fraction: 0.7, divergence: 0.0, ..Default::default() },
            &mut rng(6),
        );
        assert!(
            distinct_kmers(&repetitive, 20) < distinct_kmers(&plain, 20),
            "repeat injection should lower 20-mer diversity"
        );
    }

    #[test]
    fn symbols_stay_in_alphabet() {
        let a = Alphabet::protein();
        let bg = iid_sequence(&a, 5_000, &mut rng(8));
        let s = inject_repeats(
            &bg,
            30_000,
            a.size(),
            &RepeatProfile { divergence: 0.1, ..Default::default() },
            &mut rng(9),
        );
        assert!(s.iter().all(|&c| (c as usize) < a.size()));
    }

    #[test]
    fn random_other_never_returns_same() {
        let mut r = rng(3);
        for _ in 0..1000 {
            let c = r.gen_range(0..4) as Code;
            assert_ne!(random_other(c, 4, &mut r), c);
        }
    }
}
