//! Sequence substrate for the SPINE reproduction.
//!
//! The paper evaluates on real genomes (E.coli, C.elegans, human chromosomes
//! 21 and 19) and proteomes. Those datasets are not shipped with this
//! repository, so this crate provides the closest synthetic equivalent:
//! generators that produce DNA/protein sequences with the *repeat structure*
//! that drives every quantity the paper measures (rib density, label maxima,
//! link locality, matching work). See DESIGN.md §4 for the substitution
//! rationale.
//!
//! * [`markov`] — order-k Markov background sequence (plus i.i.d. uniform);
//! * [`repeats`] — injection of dispersed and tandem repeats with point
//!   mutations, mimicking genomic repeat families;
//! * [`mutate()`] — derive a related sequence (SNPs, indels, block moves) to
//!   form the genome *pairs* used by the alignment experiments;
//! * [`presets`] — named stand-ins (`eco-sim`, `cel-sim`, `hc21-sim`,
//!   `hc19-sim`, and protein presets) with paper-matching lengths, scalable
//!   for laptop runs;
//! * [`fasta`] — minimal FASTA reader/writer so real data can be substituted
//!   in when available.

pub mod dna;
pub mod fasta;
pub mod markov;
pub mod mutate;
pub mod presets;
pub mod repeats;

pub use dna::{complement, gc_content, reverse_complement};
pub use markov::{iid_sequence, MarkovModel};
pub use mutate::{mutate, MutationProfile};
pub use presets::{preset, preset_names, Preset};
pub use repeats::{inject_repeats, RepeatProfile};

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The deterministic RNG used throughout the workload generators; seeded
/// explicitly so every experiment is reproducible.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}
