//! Minimal FASTA reader/writer.
//!
//! The experiment harness is driven by synthetic presets by default, but the
//! paper's real datasets (or any other sequence) can be substituted in by
//! pointing the CLI at a FASTA file. Only the subset of the format needed
//! for that is implemented: `>` headers, sequence lines, `;` comments.

use std::io::{BufRead, Write};
use strindex::{Alphabet, Code, Error, Result};

/// One FASTA record: a header line (without `>`) and its sequence bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Header text following `>` (may be empty).
    pub header: String,
    /// Raw sequence bytes with whitespace removed.
    pub seq: Vec<u8>,
}

/// Parse all records from a FASTA stream.
pub fn read_fasta<R: BufRead>(reader: R) -> Result<Vec<Record>> {
    let mut records: Vec<Record> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with(';') {
            continue;
        }
        if let Some(header) = trimmed.strip_prefix('>') {
            records.push(Record { header: header.trim().to_string(), seq: Vec::new() });
        } else {
            let rec = records.last_mut().ok_or_else(|| {
                Error::Parse(format!("line {}: sequence before header", lineno + 1))
            })?;
            rec.seq.extend(trimmed.bytes().filter(|b| !b.is_ascii_whitespace()));
        }
    }
    if records.is_empty() {
        return Err(Error::Parse("no FASTA records found".into()));
    }
    Ok(records)
}

/// Write records in 70-column FASTA.
pub fn write_fasta<W: Write>(mut writer: W, records: &[Record]) -> Result<()> {
    for rec in records {
        writeln!(writer, ">{}", rec.header)?;
        for chunk in rec.seq.chunks(70) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

/// Read a FASTA stream and encode the concatenation of all records with
/// `alphabet`, skipping bytes the alphabet rejects (real genome files contain
/// `N` runs; the paper's prototypes likewise index the four-letter alphabet).
/// Returns the codes and the number of skipped bytes.
pub fn read_encoded<R: BufRead>(reader: R, alphabet: &Alphabet) -> Result<(Vec<Code>, usize)> {
    let records = read_fasta(reader)?;
    let mut codes = Vec::new();
    let mut skipped = 0usize;
    for rec in &records {
        for &b in &rec.seq {
            match alphabet.encode_byte(b) {
                Some(c) => codes.push(c),
                None => skipped += 1,
            }
        }
    }
    Ok((codes, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "; a comment\n>seq1 first\nACGT\nACG\n\n>seq2\nTTTT\n";

    #[test]
    fn parses_headers_and_joins_lines() {
        let recs = read_fasta(Cursor::new(SAMPLE)).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].header, "seq1 first");
        assert_eq!(recs[0].seq, b"ACGTACG");
        assert_eq!(recs[1].seq, b"TTTT");
    }

    #[test]
    fn rejects_sequence_before_header() {
        let err = read_fasta(Cursor::new("ACGT\n")).unwrap_err();
        assert!(matches!(err, Error::Parse(_)));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(read_fasta(Cursor::new("")).is_err());
    }

    #[test]
    fn round_trip() {
        let recs = read_fasta(Cursor::new(SAMPLE)).unwrap();
        let mut buf = Vec::new();
        write_fasta(&mut buf, &recs).unwrap();
        let again = read_fasta(Cursor::new(buf)).unwrap();
        assert_eq!(recs, again);
    }

    #[test]
    fn encode_skips_unknown_bytes() {
        let a = Alphabet::dna();
        let (codes, skipped) = read_encoded(Cursor::new(">x\nACGNNTA\n"), &a).unwrap();
        assert_eq!(codes, vec![0, 1, 2, 3, 0]); // ACGTA
        assert_eq!(skipped, 2);
    }

    #[test]
    fn wraps_long_lines_at_70() {
        let rec = Record { header: "long".into(), seq: vec![b'A'; 150] };
        let mut buf = Vec::new();
        write_fasta(&mut buf, std::slice::from_ref(&rec)).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header + 70 + 70 + 10
        assert_eq!(lines[1].len(), 70);
        assert_eq!(lines[3].len(), 10);
    }
}
