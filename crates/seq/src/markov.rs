//! Background sequence generators: i.i.d. and order-k Markov.
//!
//! Real genomic sequence is locally correlated (GC skew, dinucleotide bias).
//! An order-k Markov chain with randomly drawn, concentration-controlled
//! transition rows reproduces that short-range structure; the long-range
//! repeat structure is added separately by [`crate::repeats`].

use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use strindex::{Alphabet, Code};

/// Generate `len` symbols drawn i.i.d. uniformly from `alphabet`.
pub fn iid_sequence<R: Rng>(alphabet: &Alphabet, len: usize, rng: &mut R) -> Vec<Code> {
    let k = alphabet.size() as u32;
    (0..len).map(|_| rng.gen_range(0..k) as Code).collect()
}

/// An order-k Markov model over an alphabet, with one categorical
/// distribution per length-k context.
pub struct MarkovModel {
    alphabet: Alphabet,
    order: usize,
    /// `tables[ctx]` = sampling distribution for the next symbol given the
    /// context index `ctx` (base-`size` encoding of the last `order` codes).
    tables: Vec<WeightedIndex<f64>>,
}

impl MarkovModel {
    /// Build a random model. `skew` ∈ [0, 1] controls how biased each
    /// transition row is: 0 = uniform rows (memoryless), 1 = strongly peaked
    /// rows (very repetitive local texture). Genomic DNA sits around 0.3–0.5.
    ///
    /// # Panics
    /// Panics if `size^order` exceeds 2^20 contexts (guards against an
    /// accidental protein order-8 model, which would need 25 G rows).
    pub fn random<R: Rng>(alphabet: &Alphabet, order: usize, skew: f64, rng: &mut R) -> Self {
        let size = alphabet.size();
        let contexts = size.pow(order as u32);
        assert!(contexts <= 1 << 20, "too many Markov contexts: {contexts}");
        let tables = (0..contexts)
            .map(|_| {
                let weights: Vec<f64> = (0..size)
                    .map(|_| {
                        let u: f64 = rng.gen_range(0.0..1.0);
                        // Interpolate between uniform (1.0) and a heavy-tailed
                        // draw; exponentiation peaks the row as skew → 1.
                        (1.0 - skew) + skew * u.powf(4.0)
                    })
                    .collect();
                WeightedIndex::new(&weights).expect("weights are positive")
            })
            .collect();
        MarkovModel { alphabet: alphabet.clone(), order, tables }
    }

    /// The model's alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The model order (context length).
    pub fn order(&self) -> usize {
        self.order
    }

    /// Sample a sequence of `len` symbols.
    pub fn sample<R: Rng>(&self, len: usize, rng: &mut R) -> Vec<Code> {
        let size = self.alphabet.size();
        let mut out = Vec::with_capacity(len);
        let mut ctx = 0usize;
        let modulus = size.pow(self.order as u32);
        for i in 0..len {
            let code = if i < self.order {
                rng.gen_range(0..size) as Code
            } else {
                self.tables[ctx].sample(rng) as Code
            };
            out.push(code);
            ctx = (ctx * size + code as usize) % modulus.max(1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn iid_stays_in_range() {
        let a = Alphabet::dna();
        let s = iid_sequence(&a, 10_000, &mut rng(1));
        assert_eq!(s.len(), 10_000);
        assert!(s.iter().all(|&c| (c as usize) < a.size()));
        // All four symbols should appear in 10k draws.
        for sym in 0..4u8 {
            assert!(s.contains(&sym), "symbol {sym} missing");
        }
    }

    #[test]
    fn markov_is_deterministic_given_seed() {
        let a = Alphabet::dna();
        let m1 = MarkovModel::random(&a, 3, 0.4, &mut rng(7));
        let m2 = MarkovModel::random(&a, 3, 0.4, &mut rng(7));
        assert_eq!(m1.sample(500, &mut rng(9)), m2.sample(500, &mut rng(9)));
    }

    #[test]
    fn markov_skew_increases_repetitiveness() {
        // Count distinct 6-mers: a skewed chain should produce fewer.
        let a = Alphabet::dna();
        let count_kmers = |s: &[Code]| {
            let mut set = std::collections::HashSet::new();
            for w in s.windows(6) {
                set.insert(w.to_vec());
            }
            set.len()
        };
        let flat = MarkovModel::random(&a, 2, 0.0, &mut rng(3)).sample(20_000, &mut rng(4));
        let peaky = MarkovModel::random(&a, 2, 0.95, &mut rng(3)).sample(20_000, &mut rng(4));
        assert!(
            count_kmers(&peaky) < count_kmers(&flat),
            "skewed chain should repeat more: {} vs {}",
            count_kmers(&peaky),
            count_kmers(&flat)
        );
    }

    #[test]
    fn protein_markov_works() {
        let a = Alphabet::protein();
        let m = MarkovModel::random(&a, 2, 0.3, &mut rng(11));
        let s = m.sample(5_000, &mut rng(12));
        assert!(s.iter().all(|&c| (c as usize) < 20));
    }
}
