//! `gen` — dump a synthetic dataset as FASTA.
//!
//! ```text
//! gen <preset> [--scale F] [--mutate] [--seed N]
//! ```
//!
//! Writes FASTA to stdout: the preset sequence, or (with `--mutate`) the
//! derived relative used as the query side of the paper's matching
//! experiments. Lets external tools consume exactly the sequences the
//! experiment harness measures, and lets the `pattern_search` example run
//! over a file:
//!
//! ```sh
//! cargo run -p genseq --bin gen -- eco-sim --scale 0.01 > eco.fasta
//! cargo run --example pattern_search eco.fasta ACGTACGT
//! ```

use genseq::fasta::{write_fasta, Record};
use genseq::{mutate, preset, preset_names, rng, MutationProfile};

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(name) = args.next() else {
        eprintln!("usage: gen <preset> [--scale F] [--mutate] [--seed N]");
        eprintln!("presets: {}", preset_names().join(", "));
        std::process::exit(2);
    };
    let mut scale = 0.01f64;
    let mut do_mutate = false;
    let mut seed = 42u64;
    let rest: Vec<String> = args.collect();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--scale" => {
                scale = rest[i + 1].parse().expect("--scale takes a float");
                i += 2;
            }
            "--seed" => {
                seed = rest[i + 1].parse().expect("--seed takes an integer");
                i += 2;
            }
            "--mutate" => {
                do_mutate = true;
                i += 1;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let Some(p) = preset(&name) else {
        eprintln!("unknown preset {name}; available: {}", preset_names().join(", "));
        std::process::exit(2);
    };
    let alphabet = p.alphabet();
    let mut seq = p.generate(scale);
    let mut header = format!("{} scale={scale} ({})", p.name, p.stands_in_for);
    if do_mutate {
        seq = mutate(&seq, alphabet.size(), &MutationProfile::default(), &mut rng(seed));
        header.push_str(&format!(" mutated seed={seed}"));
    }
    let rec = Record { header, seq: alphabet.decode_all(&seq) };
    let stdout = std::io::stdout();
    write_fasta(stdout.lock(), std::slice::from_ref(&rec)).expect("write FASTA");
}
