//! DNA-specific sequence operations.
//!
//! Whole-genome aligners match both strands: a query segment may align to
//! the *reverse complement* of the data. With the DNA code assignment
//! (A=0, C=1, G=2, T=3) complementation is simply `3 − code`.

use strindex::{Alphabet, AlphabetKind, Code, Error, Result};

/// Complement one DNA code (A↔T, C↔G).
#[inline]
pub fn complement(code: Code) -> Code {
    debug_assert!(code < 4);
    3 - code
}

/// The reverse complement of a DNA code sequence.
///
/// # Errors
/// Returns [`Error::AlphabetMismatch`] if `alphabet` is not DNA.
pub fn reverse_complement(alphabet: &Alphabet, seq: &[Code]) -> Result<Vec<Code>> {
    if alphabet.kind() != AlphabetKind::Dna {
        return Err(Error::AlphabetMismatch);
    }
    Ok(seq.iter().rev().map(|&c| complement(c)).collect())
}

/// GC content of a DNA code sequence, in [0, 1].
pub fn gc_content(seq: &[Code]) -> f64 {
    if seq.is_empty() {
        return 0.0;
    }
    let gc = seq.iter().filter(|&&c| c == 1 || c == 2).count();
    gc as f64 / seq.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn revcomp_round_trips() {
        let a = Alphabet::dna();
        let s = a.encode(b"ACGGTTAC").unwrap();
        let rc = reverse_complement(&a, &s).unwrap();
        assert_eq!(a.decode_all(&rc), b"GTAACCGT");
        assert_eq!(reverse_complement(&a, &rc).unwrap(), s);
    }

    #[test]
    fn complement_pairs() {
        let a = Alphabet::dna();
        let enc = |b: u8| a.encode_byte(b).unwrap();
        assert_eq!(complement(enc(b'A')), enc(b'T'));
        assert_eq!(complement(enc(b'C')), enc(b'G'));
        assert_eq!(complement(enc(b'G')), enc(b'C'));
        assert_eq!(complement(enc(b'T')), enc(b'A'));
    }

    #[test]
    fn rejects_non_dna() {
        let a = Alphabet::protein();
        assert!(matches!(reverse_complement(&a, &[0, 1]), Err(Error::AlphabetMismatch)));
    }

    #[test]
    fn gc_content_counts() {
        let a = Alphabet::dna();
        assert_eq!(gc_content(&a.encode(b"GGCC").unwrap()), 1.0);
        assert_eq!(gc_content(&a.encode(b"AATT").unwrap()), 0.0);
        assert_eq!(gc_content(&a.encode(b"ACGT").unwrap()), 0.5);
        assert_eq!(gc_content(&[]), 0.0);
    }

    #[test]
    fn palindromes_are_their_own_revcomp() {
        // GAATTC (EcoRI site) is a biological palindrome.
        let a = Alphabet::dna();
        let s = a.encode(b"GAATTC").unwrap();
        assert_eq!(reverse_complement(&a, &s).unwrap(), s);
    }
}
