//! Property tests: SA-IS and the search layer against brute force.

use proptest::prelude::*;
use strindex::{Alphabet, Code, StringIndex};
use suffix_array::{lcp_kasai, suffix_array, SaIndex};
use suffix_trie::NaiveIndex;

fn dna_codes(max_len: usize) -> impl Strategy<Value = Vec<Code>> {
    prop::collection::vec(0u8..4, 0..=max_len)
}

fn binary_codes(max_len: usize) -> impl Strategy<Value = Vec<Code>> {
    prop::collection::vec(0u8..2, 0..=max_len)
}

fn naive_sa(text: &[Code]) -> Vec<u32> {
    let mut sa: Vec<u32> = (0..text.len() as u32).collect();
    sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    sa
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sais_equals_naive_sort(text in dna_codes(300)) {
        prop_assert_eq!(suffix_array(&text, 4), naive_sa(&text));
    }

    #[test]
    fn sais_on_repetitive_binary(text in binary_codes(300)) {
        prop_assert_eq!(suffix_array(&text, 4), naive_sa(&text));
    }

    #[test]
    fn lcp_is_correct_and_tight(text in dna_codes(200)) {
        let sa = suffix_array(&text, 4);
        let lcp = lcp_kasai(&text, &sa);
        for i in 1..sa.len() {
            let (a, b) = (sa[i - 1] as usize, sa[i] as usize);
            let common = text[a..]
                .iter()
                .zip(&text[b..])
                .take_while(|(x, y)| x == y)
                .count();
            prop_assert_eq!(lcp[i] as usize, common, "rank {}", i);
        }
    }

    #[test]
    fn sa_is_a_permutation(text in dna_codes(200)) {
        let sa = suffix_array(&text, 4);
        let mut seen = vec![false; text.len()];
        for &p in &sa {
            prop_assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn index_queries_match_oracle(text in binary_codes(80), pat in binary_codes(6)) {
        let a = Alphabet::dna();
        let idx = SaIndex::build(a.clone(), &text);
        let n = NaiveIndex::new(a, &text);
        if !pat.is_empty() {
            prop_assert_eq!(idx.find_all(&pat), n.find_all(&pat));
            prop_assert_eq!(idx.find_first(&pat), n.find_first(&pat));
        }
    }
}
