//! SA-IS: linear-time suffix-array construction by induced sorting
//! (Nong, Zhang & Chan, 2009).
//!
//! The public entry point works on alphabet codes; internally the recursion
//! operates on `usize` strings with an appended unique sentinel (rank 0).

use strindex::Code;

/// Suffix array of `text` (alphabet codes). Returns the start positions of
/// the sorted suffixes of `text` (the sentinel's suffix is dropped), so the
/// result has exactly `text.len()` entries.
pub fn suffix_array(text: &[Code], alphabet_size: usize) -> Vec<u32> {
    if text.is_empty() {
        return Vec::new();
    }
    // Shift codes by +1 so the sentinel can be 0.
    let mut s: Vec<usize> = Vec::with_capacity(text.len() + 1);
    s.extend(text.iter().map(|&c| c as usize + 1));
    s.push(0);
    let sa = sa_is(&s, alphabet_size + 1);
    // sa[0] is the sentinel suffix; drop it.
    sa.into_iter().skip(1).map(|p| p as u32).collect()
}

/// Core SA-IS over a string that ends with a unique smallest sentinel.
fn sa_is(s: &[usize], k: usize) -> Vec<usize> {
    let n = s.len();
    debug_assert!(n >= 1);
    if n == 1 {
        return vec![0];
    }
    if n == 2 {
        return vec![1, 0];
    }

    // S/L types; sentinel is S-type.
    let mut is_s = vec![false; n];
    is_s[n - 1] = true;
    for i in (0..n - 1).rev() {
        is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
    }
    let is_lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];

    // Bucket boundaries.
    let mut sizes = vec![0usize; k];
    for &c in s {
        sizes[c] += 1;
    }
    let heads = |sizes: &[usize]| {
        let mut h = vec![0usize; k];
        let mut sum = 0;
        for c in 0..k {
            h[c] = sum;
            sum += sizes[c];
        }
        h
    };
    let tails = |sizes: &[usize]| {
        let mut t = vec![0usize; k];
        let mut sum = 0;
        for c in 0..k {
            sum += sizes[c];
            t[c] = sum;
        }
        t
    };

    const EMPTY: usize = usize::MAX;

    // Induced sort: given LMS positions placed at bucket tails, fill SA.
    let induce = |lms: &[usize]| -> Vec<usize> {
        let mut sa = vec![EMPTY; n];
        // Place LMS suffixes at their buckets' tails, in the given order
        // (reversed so later entries go nearer the tail).
        let mut tail = tails(&sizes);
        for &p in lms.iter().rev() {
            let c = s[p];
            tail[c] -= 1;
            sa[tail[c]] = p;
        }
        // Induce L-type from the left.
        let mut head = heads(&sizes);
        for i in 0..n {
            let p = sa[i];
            if p != EMPTY && p > 0 && !is_s[p - 1] {
                let c = s[p - 1];
                sa[head[c]] = p - 1;
                head[c] += 1;
            }
        }
        // Induce S-type from the right.
        let mut tail = tails(&sizes);
        for i in (0..n).rev() {
            let p = sa[i];
            if p != EMPTY && p > 0 && is_s[p - 1] {
                let c = s[p - 1];
                tail[c] -= 1;
                sa[tail[c]] = p - 1;
            }
        }
        sa
    };

    // Step 1: rough sort with LMS positions in text order.
    let lms_positions: Vec<usize> = (0..n).filter(|&i| is_lms(i)).collect();
    let sa1 = induce(&lms_positions);

    // Step 2: extract LMS suffixes in sorted order and name LMS substrings.
    let sorted_lms: Vec<usize> = sa1.iter().copied().filter(|&p| is_lms(p)).collect();
    let mut names = vec![EMPTY; n];
    let mut name = 0usize;
    let mut prev = EMPTY;
    for &p in &sorted_lms {
        if prev != EMPTY && !lms_substr_eq(s, &is_s, prev, p) {
            name += 1;
        }
        if prev == EMPTY {
            name = 0;
        }
        names[p] = name;
        prev = p;
    }
    let num_names = name + 1;

    // Step 3: sort LMS suffixes, recursing only if names are not unique.
    let reduced: Vec<usize> = lms_positions.iter().map(|&p| names[p]).collect();
    let lms_sorted: Vec<usize> = if num_names == lms_positions.len() {
        // Names already distinct: order by name.
        let mut order = vec![0usize; lms_positions.len()];
        for (i, &nm) in reduced.iter().enumerate() {
            order[nm] = lms_positions[i];
        }
        order
    } else {
        let sub_sa = sa_is(&reduced, num_names);
        sub_sa.into_iter().map(|i| lms_positions[i]).collect()
    };

    // Step 4: final induced sort with correctly ordered LMS suffixes.
    induce(&lms_sorted)
}

/// Are the LMS substrings starting at `a` and `b` equal?
fn lms_substr_eq(s: &[usize], is_s: &[bool], a: usize, b: usize) -> bool {
    let n = s.len();
    if a == b {
        return true;
    }
    let is_lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];
    let mut i = 0usize;
    loop {
        let (pa, pb) = (a + i, b + i);
        if pa >= n || pb >= n {
            return false;
        }
        if s[pa] != s[pb] || is_s[pa] != is_s[pb] {
            return false;
        }
        if i > 0 && (is_lms(pa) || is_lms(pb)) {
            return is_lms(pa) && is_lms(pb);
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strindex::Alphabet;

    fn naive_sa(text: &[Code]) -> Vec<u32> {
        let mut sa: Vec<u32> = (0..text.len() as u32).collect();
        sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
        sa
    }

    #[test]
    fn classic_examples() {
        let a = Alphabet::ascii();
        for t in ["banana", "mississippi", "abracadabra", "aaaa", "abcd", "dcba"] {
            let codes = a.encode(t.as_bytes()).unwrap();
            assert_eq!(suffix_array(&codes, a.size()), naive_sa(&codes), "text {t}");
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(suffix_array(&[], 4), Vec::<u32>::new());
        assert_eq!(suffix_array(&[2], 4), vec![0]);
    }

    #[test]
    fn dna_random_against_naive() {
        // Deterministic pseudo-random DNA strings of varied lengths.
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 4) as Code
        };
        for len in [2usize, 3, 7, 50, 257, 1000] {
            let text: Vec<Code> = (0..len).map(|_| next()).collect();
            assert_eq!(suffix_array(&text, 4), naive_sa(&text), "len {len}");
        }
    }

    #[test]
    fn highly_repetitive_input() {
        let text: Vec<Code> = std::iter::repeat_n([0u8, 1, 0, 1, 1], 100).flatten().collect();
        assert_eq!(suffix_array(&text, 4), naive_sa(&text));
    }
}
