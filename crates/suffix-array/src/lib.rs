//! Suffix-array baseline.
//!
//! §7 of the SPINE paper discusses suffix arrays (Manber–Myers) as the
//! space-frugal alternative (~6 bytes/char but, at the time, supra-linear
//! construction). This crate provides a modern linear-time SA-IS
//! construction plus Kasai's LCP algorithm and binary-search pattern lookup,
//! used by the experiment harness as an extra baseline and by the ablation
//! benches.

pub mod lcp;
pub mod sais;
pub mod search;

pub use lcp::lcp_kasai;
pub use sais::suffix_array;
pub use search::SaIndex;
