//! Binary-search pattern lookup over the suffix array.

use crate::lcp::lcp_kasai;
use crate::sais::suffix_array;
use strindex::{Alphabet, Code, StringIndex};

/// A suffix array bundled with its text and (lazily useful) LCP array,
/// exposing the common [`StringIndex`] query surface.
///
/// ```
/// use suffix_array::SaIndex;
/// use strindex::{Alphabet, StringIndex};
///
/// let alphabet = Alphabet::ascii();
/// let idx = SaIndex::build_from_bytes(alphabet.clone(), b"banana").unwrap();
/// assert_eq!(idx.find_all(&alphabet.encode(b"an").unwrap()), vec![1, 3]);
/// assert_eq!(idx.sa(), &[5, 3, 1, 0, 4, 2]);
/// ```
pub struct SaIndex {
    alphabet: Alphabet,
    text: Vec<Code>,
    sa: Vec<u32>,
    lcp: Vec<u32>,
}

impl SaIndex {
    /// Build the array (SA-IS) and LCP (Kasai) for an encoded text.
    pub fn build(alphabet: Alphabet, text: &[Code]) -> Self {
        let sa = suffix_array(text, alphabet.code_space());
        let lcp = lcp_kasai(text, &sa);
        SaIndex { alphabet, text: text.to_vec(), sa, lcp }
    }

    /// Convenience: encode and build.
    pub fn build_from_bytes(alphabet: Alphabet, text: &[u8]) -> strindex::Result<Self> {
        let codes = alphabet.encode(text)?;
        Ok(Self::build(alphabet, &codes))
    }

    /// The sorted suffix start positions.
    pub fn sa(&self) -> &[u32] {
        &self.sa
    }

    /// The LCP array (Kasai).
    pub fn lcp(&self) -> &[u32] {
        &self.lcp
    }

    /// The indexed text.
    pub fn text(&self) -> &[Code] {
        &self.text
    }

    /// Heap bytes (text + SA + LCP): the ~"6 bytes per char" related-work
    /// figure corresponds to SA-only storage; we keep LCP too.
    pub fn heap_bytes(&self) -> usize {
        self.text.capacity() + (self.sa.capacity() + self.lcp.capacity()) * 4
    }

    /// The `sa` range of suffixes starting with `pattern`.
    pub fn range(&self, pattern: &[Code]) -> std::ops::Range<usize> {
        use std::cmp::Ordering;
        // Ordering of the i-th sorted suffix against the pattern; a suffix
        // with the pattern as a prefix compares Equal.
        let cmp_at = |i: usize| -> Ordering {
            let suf = &self.text[self.sa[i] as usize..];
            let l = suf.len().min(pattern.len());
            match suf[..l].cmp(&pattern[..l]) {
                Ordering::Equal if suf.len() < pattern.len() => Ordering::Less,
                ord => ord,
            }
        };
        let n = self.sa.len();
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if cmp_at(mid) == Ordering::Less {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let start = lo;
        hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if cmp_at(mid) == Ordering::Greater {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        start..lo
    }
}

impl StringIndex for SaIndex {
    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn text_len(&self) -> usize {
        self.text.len()
    }

    fn symbol_at(&self, pos: usize) -> Code {
        self.text[pos]
    }

    fn find_first(&self, pattern: &[Code]) -> Option<usize> {
        if pattern.is_empty() {
            return Some(0);
        }
        let r = self.range(pattern);
        self.sa[r].iter().map(|&p| p as usize).min()
    }

    fn find_all(&self, pattern: &[Code]) -> Vec<usize> {
        if pattern.is_empty() {
            return Vec::new();
        }
        let r = self.range(pattern);
        let mut out: Vec<usize> = self.sa[r].iter().map(|&p| p as usize).collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suffix_trie::NaiveIndex;

    fn engines(text: &[u8]) -> (Alphabet, SaIndex, NaiveIndex) {
        let a = Alphabet::dna();
        let codes = a.encode(text).unwrap();
        (a.clone(), SaIndex::build(a.clone(), &codes), NaiveIndex::new(a, &codes))
    }

    /// The load harness serves this index from a worker pool behind a
    /// shared reference; the serving contract is thread-safety plus sorted
    /// occurrence lists.
    #[test]
    fn upholds_the_serving_contract() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SaIndex>();
        let (a, s, _) = engines(b"ACACACACGTACAC");
        let hits = s.find_all(&a.encode(b"AC").unwrap());
        assert!(hits.windows(2).all(|w| w[0] < w[1]), "occurrences must be sorted: {hits:?}");
    }

    #[test]
    fn paper_string_queries() {
        let (a, s, _) = engines(b"AACCACAACA");
        let enc = |p: &[u8]| a.encode(p).unwrap();
        assert_eq!(s.find_all(&enc(b"CA")), vec![3, 5, 8]);
        assert_eq!(s.find_first(&enc(b"AC")), Some(1));
        assert!(!s.contains(&enc(b"ACCAA")));
        assert!(s.contains(&enc(b"ACCA")));
    }

    #[test]
    fn agrees_with_naive() {
        let (_, s, n) = engines(b"ACGGTACGTTACGACCGTAACGT");
        let text = n.text().to_vec();
        let mut pats: Vec<Vec<Code>> = Vec::new();
        for l in 1..=3usize {
            for mut x in 0..(4usize.pow(l as u32)) {
                let mut p = Vec::new();
                for _ in 0..l {
                    p.push((x % 4) as Code);
                    x /= 4;
                }
                pats.push(p);
            }
        }
        for st in 0..text.len() {
            pats.push(text[st..(st + 5).min(text.len())].to_vec());
        }
        for p in pats {
            assert_eq!(s.find_all(&p), n.find_all(&p), "pattern {p:?}");
            assert_eq!(s.find_first(&p), n.find_first(&p), "pattern {p:?}");
        }
    }

    #[test]
    fn range_is_contiguous_prefix_block() {
        let (a, s, _) = engines(b"ACACACAC");
        let r = s.range(&a.encode(b"AC").unwrap());
        assert_eq!(r.len(), 4);
        for i in r {
            let suf = &s.text()[s.sa()[i] as usize..];
            assert!(suf.starts_with(&a.encode(b"AC").unwrap()[..]));
        }
    }

    #[test]
    fn pattern_longer_than_text() {
        let (a, s, _) = engines(b"AC");
        assert!(s.find_all(&a.encode(b"ACGT").unwrap()).is_empty());
    }
}

// ---------------------------------------------------------------------------
// Matching statistics over the array (for the matching experiments).
// ---------------------------------------------------------------------------

use strindex::{MatchingIndex, MatchingStats, MaximalMatch};

impl SaIndex {
    /// Longest prefix of `q` that occurs in the text, by iterative range
    /// narrowing (one binary search per extension character).
    fn longest_prefix_match(&self, q: &[Code]) -> usize {
        let mut len = 0usize;
        while len < q.len() {
            if self.range(&q[..len + 1]).is_empty() {
                break;
            }
            len += 1;
        }
        len
    }
}

impl MatchingIndex for SaIndex {
    /// O(m·L·log n) — fine for the cross-engine tests and the ablation
    /// bench; the paper's point stands that the array lacks the (suffix)
    /// links that make this linear for SPINE and suffix trees.
    fn matching_statistics(&self, query: &[Code]) -> MatchingStats {
        let m = query.len();
        // P[i] = longest prefix of query[i..] occurring in the text.
        let p: Vec<usize> = (0..m).map(|i| self.longest_prefix_match(&query[i..])).collect();
        let mut lengths = vec![0u32; m + 1];
        let mut first_end = vec![0u32; m + 1];
        // ms[e] = max k with P[e-k] ≥ k; grows by at most 1 per step, so a
        // shrinking-candidate sweep is O(m) on top of the P[] table.
        let mut k = 0usize;
        for e in 1..=m {
            k += 1; // candidate carried over from e-1, extended by one
            while k > 0 && p[e - k] < k {
                k -= 1;
            }
            lengths[e] = k as u32;
            first_end[e] = if k > 0 {
                (self.find_first(&query[e - k..e]).expect("match exists") + k) as u32
            } else {
                0
            };
        }
        MatchingStats { lengths, first_end }
    }

    fn maximal_matches(&self, query: &[Code], min_len: usize) -> Vec<MaximalMatch> {
        let stats = self.matching_statistics(query);
        let mut out = Vec::new();
        for (qs, len, _) in stats.right_maximal(min_len) {
            for ds in self.find_all(&query[qs..qs + len]) {
                out.push(MaximalMatch { query_start: qs, data_start: ds, len });
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod matching_tests {
    use super::*;
    use strindex::MatchingIndex;
    use suffix_trie::NaiveIndex;

    #[test]
    fn statistics_match_naive() {
        let a = Alphabet::dna();
        let text = a.encode(b"ACACCGACGATACGAGATTACGAGACGAGA").unwrap();
        let idx = SaIndex::build(a.clone(), &text);
        let oracle = NaiveIndex::new(a.clone(), &text);
        for q in [&b"CATAGAGAGACGATTACGAGAAAACGGG"[..], b"TTTT", b"A", b""] {
            let q = a.encode(q).unwrap();
            assert_eq!(idx.matching_statistics(&q), oracle.matching_statistics(&q));
        }
    }

    #[test]
    fn maximal_matches_match_naive() {
        let a = Alphabet::dna();
        let text = a.encode(b"ACACCGACGATACGAGATTACGAGACGAGA").unwrap();
        let idx = SaIndex::build(a.clone(), &text);
        let oracle = NaiveIndex::new(a.clone(), &text);
        let q = a.encode(b"CATAGAGAGACGATTACGAGAAAACGGG").unwrap();
        for t in [1usize, 3, 6] {
            assert_eq!(idx.maximal_matches(&q, t), oracle.maximal_matches(&q, t));
        }
    }
}
