//! Kasai's linear-time LCP construction.

use strindex::Code;

/// `lcp[i]` = length of the longest common prefix of the suffixes at
/// `sa[i-1]` and `sa[i]` (`lcp[0] == 0`). Kasai et al., O(n).
pub fn lcp_kasai(text: &[Code], sa: &[u32]) -> Vec<u32> {
    let n = text.len();
    assert_eq!(sa.len(), n);
    let mut rank = vec![0u32; n];
    for (i, &p) in sa.iter().enumerate() {
        rank[p as usize] = i as u32;
    }
    let mut lcp = vec![0u32; n];
    let mut h = 0usize;
    for i in 0..n {
        let r = rank[i] as usize;
        if r == 0 {
            h = 0;
            continue;
        }
        let j = sa[r - 1] as usize;
        while i + h < n && j + h < n && text[i + h] == text[j + h] {
            h += 1;
        }
        lcp[r] = h as u32;
        h = h.saturating_sub(1);
    }
    lcp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sais::suffix_array;
    use strindex::Alphabet;

    fn naive_lcp(text: &[Code], sa: &[u32]) -> Vec<u32> {
        let mut lcp = vec![0u32; sa.len()];
        for i in 1..sa.len() {
            let (a, b) = (sa[i - 1] as usize, sa[i] as usize);
            lcp[i] = text[a..].iter().zip(&text[b..]).take_while(|(x, y)| x == y).count() as u32;
        }
        lcp
    }

    #[test]
    fn banana() {
        let a = Alphabet::ascii();
        let t = a.encode(b"banana").unwrap();
        let sa = suffix_array(&t, a.size());
        assert_eq!(lcp_kasai(&t, &sa), naive_lcp(&t, &sa));
    }

    #[test]
    fn random_dna_matches_naive() {
        let mut state = 99u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 4) as Code
        };
        for len in [1usize, 2, 10, 100, 500] {
            let t: Vec<Code> = (0..len).map(|_| next()).collect();
            let sa = suffix_array(&t, 4);
            assert_eq!(lcp_kasai(&t, &sa), naive_lcp(&t, &sa), "len {len}");
        }
    }

    #[test]
    fn all_equal_symbols() {
        let t = vec![1u8; 20];
        let sa = suffix_array(&t, 4);
        let lcp = lcp_kasai(&t, &sa);
        // Sorted suffixes of a^20: lengths 1..20; lcp[i] = i.
        for (i, &v) in lcp.iter().enumerate() {
            assert_eq!(v as usize, i);
        }
    }

    #[test]
    fn empty() {
        assert!(lcp_kasai(&[], &[]).is_empty());
    }
}
