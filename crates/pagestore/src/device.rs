//! Page-granular storage devices.

use std::cell::Cell;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use strindex::Result;

/// Fixed page size, matching a common filesystem block multiple.
pub const PAGE_SIZE: usize = 4096;

/// Cumulative I/O counters. Page counts are the hardware-independent
/// locality signal used to reproduce the shape of the paper's disk results.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: Cell<u64>,
    writes: Cell<u64>,
    syncs: Cell<u64>,
}

impl IoStats {
    /// Pages read from the device.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Pages written to the device.
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    /// Explicit syncs issued (fsync-per-write devices).
    pub fn syncs(&self) -> u64 {
        self.syncs.get()
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.reads.set(0);
        self.writes.set(0);
        self.syncs.set(0);
    }
}

/// A device storing fixed-size pages addressed by index.
pub trait PageDevice {
    /// Read page `id` into `buf` (must be `PAGE_SIZE` long). Reading a
    /// never-written page yields zeroes.
    fn read_page(&mut self, id: u32, buf: &mut [u8]) -> Result<()>;

    /// Write page `id` from `buf`.
    fn write_page(&mut self, id: u32, buf: &[u8]) -> Result<()>;

    /// Number of pages the device currently holds.
    fn page_count(&self) -> u32;

    /// I/O counters.
    fn stats(&self) -> &IoStats;
}

/// An in-memory device: precise counting, no hardware noise. This is the
/// default substrate for the disk experiments (see DESIGN.md §4 on the
/// substitution for the paper's 2004 IDE disk).
#[derive(Default)]
pub struct MemDevice {
    pages: Vec<Box<[u8]>>,
    stats: IoStats,
}

impl MemDevice {
    /// An empty device.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageDevice for MemDevice {
    fn read_page(&mut self, id: u32, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        self.stats.reads.set(self.stats.reads.get() + 1);
        match self.pages.get(id as usize) {
            Some(p) => buf.copy_from_slice(p),
            None => buf.fill(0),
        }
        Ok(())
    }

    fn write_page(&mut self, id: u32, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        self.stats.writes.set(self.stats.writes.get() + 1);
        while self.pages.len() <= id as usize {
            self.pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
        }
        self.pages[id as usize].copy_from_slice(buf);
        Ok(())
    }

    fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

/// A real file device; when `sync_writes` is set, every page write is
/// followed by `sync_data`, reproducing the paper's `O_SYNC` measurement
/// artifact ("the absolute times are large due to our synchronous disk
/// write artifact").
pub struct FileDevice {
    file: File,
    pages: u32,
    sync_writes: bool,
    stats: IoStats,
}

impl FileDevice {
    /// Create (truncate) a device file at `path`.
    pub fn create<P: AsRef<Path>>(path: P, sync_writes: bool) -> Result<Self> {
        let file = File::options().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(FileDevice { file, pages: 0, sync_writes, stats: IoStats::default() })
    }

    /// Open an existing device file at `path`, recovering its page count
    /// from the file length.
    pub fn open<P: AsRef<Path>>(path: P, sync_writes: bool) -> Result<Self> {
        let file = File::options().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        let pages = len.div_ceil(PAGE_SIZE as u64) as u32;
        Ok(FileDevice { file, pages, sync_writes, stats: IoStats::default() })
    }
}

impl PageDevice for FileDevice {
    fn read_page(&mut self, id: u32, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        self.stats.reads.set(self.stats.reads.get() + 1);
        if id >= self.pages {
            buf.fill(0);
            return Ok(());
        }
        self.file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write_page(&mut self, id: u32, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        self.stats.writes.set(self.stats.writes.get() + 1);
        if id >= self.pages {
            // Extend with zero pages up to id.
            let zeroes = vec![0u8; PAGE_SIZE];
            self.file.seek(SeekFrom::Start(self.pages as u64 * PAGE_SIZE as u64))?;
            for _ in self.pages..id {
                self.file.write_all(&zeroes)?;
            }
            self.pages = id + 1;
        }
        self.file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.write_all(buf)?;
        if self.sync_writes {
            self.file.sync_data()?;
            self.stats.syncs.set(self.stats.syncs.get() + 1);
        }
        Ok(())
    }

    fn page_count(&self) -> u32 {
        self.pages
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(dev: &mut dyn PageDevice) {
        let mut a = [0u8; PAGE_SIZE];
        a[0] = 7;
        a[PAGE_SIZE - 1] = 9;
        dev.write_page(3, &a).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        dev.read_page(3, &mut buf).unwrap();
        assert_eq!(buf[0], 7);
        assert_eq!(buf[PAGE_SIZE - 1], 9);
        // Unwritten (but allocated) page reads back zeroes.
        dev.read_page(1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        assert!(dev.page_count() >= 4);
        assert_eq!(dev.stats().reads(), 2);
        assert_eq!(dev.stats().writes(), 1);
    }

    #[test]
    fn mem_device_round_trip() {
        round_trip(&mut MemDevice::new());
    }

    #[test]
    fn file_device_round_trip() {
        let dir = std::env::temp_dir().join("pagestore-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("dev-{}.bin", std::process::id()));
        round_trip(&mut FileDevice::create(&path, false).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_device_sync_counts() {
        let dir = std::env::temp_dir().join("pagestore-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("dev-sync-{}.bin", std::process::id()));
        let mut dev = FileDevice::create(&path, true).unwrap();
        dev.write_page(0, &[1u8; PAGE_SIZE]).unwrap();
        dev.write_page(1, &[2u8; PAGE_SIZE]).unwrap();
        assert_eq!(dev.stats().syncs(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn never_written_page_is_zero() {
        let mut dev = MemDevice::new();
        let mut buf = [1u8; PAGE_SIZE];
        dev.read_page(42, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(dev.page_count(), 0);
    }
}

/// A fault-injection wrapper: forwards to an inner device until a budget of
/// operations is spent, then fails every call with an I/O error. Used to
/// verify that the buffer pool and the engines built on it propagate
/// storage failures as `Err` instead of corrupting state or panicking.
pub struct FaultyDevice<D: PageDevice> {
    inner: D,
    remaining: u64,
}

impl<D: PageDevice> FaultyDevice<D> {
    /// Fail every operation after the first `ops_before_failure` succeed.
    pub fn new(inner: D, ops_before_failure: u64) -> Self {
        FaultyDevice { inner, remaining: ops_before_failure }
    }

    fn spend(&mut self) -> Result<()> {
        if self.remaining == 0 {
            return Err(std::io::Error::other("injected device fault").into());
        }
        self.remaining -= 1;
        Ok(())
    }
}

impl<D: PageDevice> PageDevice for FaultyDevice<D> {
    fn read_page(&mut self, id: u32, buf: &mut [u8]) -> Result<()> {
        self.spend()?;
        self.inner.read_page(id, buf)
    }

    fn write_page(&mut self, id: u32, buf: &[u8]) -> Result<()> {
        self.spend()?;
        self.inner.write_page(id, buf)
    }

    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod faulty_tests {
    use super::*;

    #[test]
    fn fails_after_budget() {
        let mut d = FaultyDevice::new(MemDevice::new(), 2);
        let buf = [0u8; PAGE_SIZE];
        assert!(d.write_page(0, &buf).is_ok());
        assert!(d.write_page(1, &buf).is_ok());
        assert!(d.write_page(2, &buf).is_err());
        let mut rbuf = [0u8; PAGE_SIZE];
        assert!(d.read_page(0, &mut rbuf).is_err());
    }
}
