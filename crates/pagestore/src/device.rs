//! Page-granular storage devices, plus the fault-injection and retry
//! wrappers used to prove the stack degrades cleanly under storage failure.
//!
//! The wrapper devices compose: a [`RetryDevice`] over a [`FlakyDevice`]
//! over a [`MemDevice`] is a storage stack that suffers transient faults
//! and rides them out; a [`FaultyDevice`] injects a *permanent* fault at an
//! exact operation index, which the `exp faults` crashpoint sweep uses to
//! hit every I/O site of a recorded trace.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use strindex::telemetry::{Counter, Histogram, MetricsRegistry, Stage};
use strindex::{Error, IoOp, Result};

/// Fixed page size, matching a common filesystem block multiple.
pub const PAGE_SIZE: usize = 4096;

/// Cumulative I/O counters. Page counts are the hardware-independent
/// locality signal used to reproduce the shape of the paper's disk results.
///
/// Counters are relaxed atomics so devices stay `Send + Sync`-compatible
/// and can sit behind a shared index serving concurrent queries.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    syncs: AtomicU64,
}

impl IoStats {
    /// Pages read from the device.
    pub fn reads(&self) -> u64 {
        self.reads.load(Relaxed)
    }

    /// Pages written to the device.
    pub fn writes(&self) -> u64 {
        self.writes.load(Relaxed)
    }

    /// Explicit syncs issued (fsync-per-write devices).
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Relaxed)
    }

    /// Total page operations (reads + writes) — the operation index space
    /// the crashpoint sweep enumerates.
    pub fn ops(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.reads.store(0, Relaxed);
        self.writes.store(0, Relaxed);
        self.syncs.store(0, Relaxed);
    }

    #[inline]
    fn count_read(&self) {
        self.reads.fetch_add(1, Relaxed);
    }

    #[inline]
    fn count_write(&self) {
        self.writes.fetch_add(1, Relaxed);
    }

    #[inline]
    fn count_sync(&self) {
        self.syncs.fetch_add(1, Relaxed);
    }
}

/// A device storing fixed-size pages addressed by index.
///
/// `Send` so a device (and anything built over one) can live behind a
/// mutex shared across a query-engine worker pool.
pub trait PageDevice: Send {
    /// Read page `id` into `buf` (must be `PAGE_SIZE` long). Reading a
    /// never-written page yields zeroes.
    fn read_page(&mut self, id: u32, buf: &mut [u8]) -> Result<()>;

    /// Write page `id` from `buf`.
    fn write_page(&mut self, id: u32, buf: &[u8]) -> Result<()>;

    /// Number of pages the device currently holds.
    fn page_count(&self) -> u32;

    /// Durability barrier: block until every previously acknowledged write
    /// is on stable storage. Ordering-critical writers (the sealed-layout
    /// header page, manifest commits) call this between "body written" and
    /// "commit record written" — without it, "header written last" is only
    /// a program-order fact, not a media-order one.
    fn sync(&mut self) -> Result<()>;

    /// I/O counters.
    fn stats(&self) -> &IoStats;
}

/// An in-memory device: precise counting, no hardware noise. This is the
/// default substrate for the disk experiments (see DESIGN.md §4 on the
/// substitution for the paper's 2004 IDE disk).
#[derive(Default)]
pub struct MemDevice {
    pages: Vec<Box<[u8]>>,
    stats: IoStats,
}

impl MemDevice {
    /// An empty device.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageDevice for MemDevice {
    fn read_page(&mut self, id: u32, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        self.stats.count_read();
        match self.pages.get(id as usize) {
            Some(p) => buf.copy_from_slice(p),
            None => buf.fill(0),
        }
        Ok(())
    }

    fn write_page(&mut self, id: u32, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        self.stats.count_write();
        while self.pages.len() <= id as usize {
            self.pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
        }
        self.pages[id as usize].copy_from_slice(buf);
        Ok(())
    }

    fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    fn sync(&mut self) -> Result<()> {
        // Memory is "stable" the moment the write returns; count the
        // barrier so op-trace shapes match the file-backed device.
        self.stats.count_sync();
        Ok(())
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

/// A real file device; when `sync_writes` is set, every page write is
/// followed by `sync_data`, reproducing the paper's `O_SYNC` measurement
/// artifact ("the absolute times are large due to our synchronous disk
/// write artifact").
pub struct FileDevice {
    file: File,
    pages: u32,
    sync_writes: bool,
    stats: IoStats,
}

impl FileDevice {
    /// Create (truncate) a device file at `path`.
    pub fn create<P: AsRef<Path>>(path: P, sync_writes: bool) -> Result<Self> {
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| Error::io(e, IoOp::Meta, None))?;
        Ok(FileDevice { file, pages: 0, sync_writes, stats: IoStats::default() })
    }

    /// Open an existing device file at `path`, recovering its page count
    /// from the file length.
    pub fn open<P: AsRef<Path>>(path: P, sync_writes: bool) -> Result<Self> {
        let file = File::options()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| Error::io(e, IoOp::Meta, None))?;
        let len = file.metadata().map_err(|e| Error::io(e, IoOp::Meta, None))?.len();
        let pages = len.div_ceil(PAGE_SIZE as u64) as u32;
        Ok(FileDevice { file, pages, sync_writes, stats: IoStats::default() })
    }
}

impl PageDevice for FileDevice {
    fn read_page(&mut self, id: u32, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        self.stats.count_read();
        if id >= self.pages {
            buf.fill(0);
            return Ok(());
        }
        let io = |e| Error::io(e, IoOp::Read, Some(id));
        self.file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64)).map_err(io)?;
        self.file.read_exact(buf).map_err(io)?;
        Ok(())
    }

    fn write_page(&mut self, id: u32, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        self.stats.count_write();
        let io = |e| Error::io(e, IoOp::Write, Some(id));
        if id >= self.pages {
            // Extend with zero pages up to id.
            let zeroes = vec![0u8; PAGE_SIZE];
            self.file.seek(SeekFrom::Start(self.pages as u64 * PAGE_SIZE as u64)).map_err(io)?;
            for _ in self.pages..id {
                self.file.write_all(&zeroes).map_err(io)?;
            }
            self.pages = id + 1;
        }
        self.file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64)).map_err(io)?;
        self.file.write_all(buf).map_err(io)?;
        if self.sync_writes {
            self.file.sync_data().map_err(|e| Error::io(e, IoOp::Sync, Some(id)))?;
            self.stats.count_sync();
        }
        Ok(())
    }

    fn page_count(&self) -> u32 {
        self.pages
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data().map_err(|e| Error::io(e, IoOp::Sync, None))?;
        self.stats.count_sync();
        Ok(())
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

// ---------------------------------------------------------------------------
// Fault injection and retry.
// ---------------------------------------------------------------------------

/// A fault-injection wrapper: forwards to an inner device until a budget of
/// operations is spent, then fails every call with a **permanent** I/O
/// error. Used by the crashpoint sweep to verify that the buffer pool and
/// the engines built on it propagate storage failures as `Err` instead of
/// corrupting state or panicking.
pub struct FaultyDevice<D: PageDevice> {
    inner: D,
    remaining: u64,
}

impl<D: PageDevice> FaultyDevice<D> {
    /// Fail every operation after the first `ops_before_failure` succeed.
    pub fn new(inner: D, ops_before_failure: u64) -> Self {
        FaultyDevice { inner, remaining: ops_before_failure }
    }

    fn spend(&mut self, op: IoOp, page: u32) -> Result<()> {
        if self.remaining == 0 {
            return Err(Error::io(std::io::Error::other("injected device fault"), op, Some(page)));
        }
        self.remaining -= 1;
        Ok(())
    }
}

impl<D: PageDevice> PageDevice for FaultyDevice<D> {
    fn read_page(&mut self, id: u32, buf: &mut [u8]) -> Result<()> {
        self.spend(IoOp::Read, id)?;
        self.inner.read_page(id, buf)
    }

    fn write_page(&mut self, id: u32, buf: &[u8]) -> Result<()> {
        self.spend(IoOp::Write, id)?;
        self.inner.write_page(id, buf)
    }

    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    fn sync(&mut self) -> Result<()> {
        // A sync is a faultable operation like any other: fsync can fail,
        // and the crashpoint sweep must be able to land exactly on it.
        self.spend(IoOp::Sync, 0)?;
        self.inner.sync()
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
}

enum FlakyMode {
    /// Each operation fails independently with this probability.
    Probability { p: f64, rng: SmallRng },
    /// Operations with index in `[start, start + len)` fail.
    Burst { start: u64, len: u64 },
}

/// A device suffering **transient** faults: failed operations return a
/// retryable error ([`strindex::Error::is_transient`]) and leave the inner
/// device untouched, so a later attempt of the same operation can succeed.
/// Deterministic: the probabilistic mode draws from the seeded in-tree
/// `SmallRng`, and the burst mode fails an exact window of operation
/// indices.
pub struct FlakyDevice<D: PageDevice> {
    inner: D,
    mode: FlakyMode,
    attempts: u64,
}

impl<D: PageDevice> FlakyDevice<D> {
    /// Fail each operation independently with probability `p` (seeded, so
    /// the fault schedule is reproducible).
    pub fn with_probability(inner: D, p: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "fault probability must be in [0, 1)");
        FlakyDevice {
            inner,
            mode: FlakyMode::Probability { p, rng: SmallRng::seed_from_u64(seed) },
            attempts: 0,
        }
    }

    /// Fail the `len` operations starting at attempt index `start` (a
    /// single outage burst), succeed everywhere else.
    pub fn with_burst(inner: D, start: u64, len: u64) -> Self {
        FlakyDevice { inner, mode: FlakyMode::Burst { start, len }, attempts: 0 }
    }

    /// Operations attempted so far (including failed ones — retries of one
    /// logical operation each count).
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    fn trip(&mut self, op: IoOp, page: u32) -> Result<()> {
        let k = self.attempts;
        self.attempts += 1;
        let fail = match &mut self.mode {
            FlakyMode::Probability { p, rng } => rng.gen_bool(*p),
            FlakyMode::Burst { start, len } => k >= *start && k < *start + *len,
        };
        if fail {
            return Err(Error::io(
                std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    format!("injected transient device fault (op {k})"),
                ),
                op,
                Some(page),
            ));
        }
        Ok(())
    }
}

impl<D: PageDevice> PageDevice for FlakyDevice<D> {
    fn read_page(&mut self, id: u32, buf: &mut [u8]) -> Result<()> {
        self.trip(IoOp::Read, id)?;
        self.inner.read_page(id, buf)
    }

    fn write_page(&mut self, id: u32, buf: &[u8]) -> Result<()> {
        self.trip(IoOp::Write, id)?;
        self.inner.write_page(id, buf)
    }

    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    fn sync(&mut self) -> Result<()> {
        self.trip(IoOp::Sync, 0)?;
        self.inner.sync()
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
}

/// Retry schedule for a [`RetryDevice`]: bounded exponential backoff with
/// deterministic jitter.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries per operation after the initial attempt.
    pub max_retries: u32,
    /// Backoff before retry `k` is `base_delay << k` (capped), plus jitter.
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: Duration,
    /// Seed for the jitter generator (deterministic per device instance).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(100),
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// A policy that never sleeps — for tests and in-memory fault drills.
    pub fn immediate(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            seed: 0x5EED,
        }
    }
}

/// Registry handles the retry layer feeds ([`RetryDevice::attach_telemetry`]):
/// backoff sleeps land in the shared [`Stage::RetryBackoff`] histogram, and
/// absorbed retries are counted per operation kind (the `IoContext`
/// annotation the error taxonomy already carries).
struct RetryTelemetry {
    backoff: Arc<Histogram>,
    retries_read: Arc<Counter>,
    retries_write: Arc<Counter>,
    exhausted: Arc<Counter>,
}

/// A retry layer over any [`PageDevice`]: **transient** errors (see
/// [`strindex::Error::is_transient`]) are retried up to
/// [`RetryPolicy::max_retries`] times with bounded exponential backoff and
/// deterministic jitter; permanent errors propagate immediately.
pub struct RetryDevice<D: PageDevice> {
    inner: D,
    policy: RetryPolicy,
    jitter: SmallRng,
    retries: u64,
    exhausted: u64,
    telemetry: Option<RetryTelemetry>,
}

impl<D: PageDevice> RetryDevice<D> {
    /// Wrap `inner` with the given retry schedule.
    pub fn new(inner: D, policy: RetryPolicy) -> Self {
        RetryDevice {
            inner,
            policy,
            jitter: SmallRng::seed_from_u64(policy.seed),
            retries: 0,
            exhausted: 0,
            telemetry: None,
        }
    }

    /// Record this device's retry activity into `registry`: backoff sleeps
    /// into the [`Stage::RetryBackoff`] histogram, absorbed retries into
    /// `io.retries.read` / `io.retries.write`, and budget exhaustions into
    /// `io.retry_exhausted`.
    pub fn attach_telemetry(&mut self, registry: &MetricsRegistry) {
        self.telemetry = Some(RetryTelemetry {
            backoff: registry.stage(Stage::RetryBackoff),
            retries_read: registry.counter("io.retries.read"),
            retries_write: registry.counter("io.retries.write"),
            exhausted: registry.counter("io.retry_exhausted"),
        });
    }

    /// Transient faults absorbed (each is one re-attempted operation).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Operations that stayed transiently failing past the retry budget
    /// (their final transient error was propagated to the caller).
    pub fn exhausted(&self) -> u64 {
        self.exhausted
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    fn backoff(&mut self, attempt: u32) {
        if self.policy.base_delay.is_zero() {
            // Record the zero sleep too: the backoff histogram then counts
            // every absorbed retry even under immediate (test) policies.
            if let Some(t) = &self.telemetry {
                t.backoff.record(Duration::ZERO);
            }
            return;
        }
        let shift = attempt.min(16);
        let exp = self.policy.base_delay.saturating_mul(1u32 << shift).min(self.policy.max_delay);
        // Deterministic jitter in [0, exp/2]: decorrelates device instances
        // without losing reproducibility (the rng is seeded per device).
        let jitter_ns =
            if exp.is_zero() { 0 } else { self.jitter.gen_range(0..=exp.as_nanos() as u64 / 2) };
        let sleep = exp + Duration::from_nanos(jitter_ns);
        if let Some(t) = &self.telemetry {
            t.backoff.record(sleep);
        }
        std::thread::sleep(sleep);
    }

    fn with_retry<T>(&mut self, kind: IoOp, mut op: impl FnMut(&mut D) -> Result<T>) -> Result<T> {
        let mut attempt = 0u32;
        loop {
            match op(&mut self.inner) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt < self.policy.max_retries => {
                    self.retries += 1;
                    if let Some(t) = &self.telemetry {
                        match kind {
                            IoOp::Write => t.retries_write.incr(),
                            _ => t.retries_read.incr(),
                        }
                    }
                    self.backoff(attempt);
                    attempt += 1;
                }
                Err(e) => {
                    if e.is_transient() {
                        self.exhausted += 1;
                        if let Some(t) = &self.telemetry {
                            t.exhausted.incr();
                        }
                    }
                    return Err(e);
                }
            }
        }
    }
}

impl<D: PageDevice> PageDevice for RetryDevice<D> {
    fn read_page(&mut self, id: u32, buf: &mut [u8]) -> Result<()> {
        self.with_retry(IoOp::Read, |d| d.read_page(id, buf))
    }

    fn write_page(&mut self, id: u32, buf: &[u8]) -> Result<()> {
        self.with_retry(IoOp::Write, |d| d.write_page(id, buf))
    }

    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    fn sync(&mut self) -> Result<()> {
        self.with_retry(IoOp::Sync, |d| d.sync())
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(dev: &mut dyn PageDevice) {
        let mut a = [0u8; PAGE_SIZE];
        a[0] = 7;
        a[PAGE_SIZE - 1] = 9;
        dev.write_page(3, &a).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        dev.read_page(3, &mut buf).unwrap();
        assert_eq!(buf[0], 7);
        assert_eq!(buf[PAGE_SIZE - 1], 9);
        // Unwritten (but allocated) page reads back zeroes.
        dev.read_page(1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        assert!(dev.page_count() >= 4);
        assert_eq!(dev.stats().reads(), 2);
        assert_eq!(dev.stats().writes(), 1);
        assert_eq!(dev.stats().ops(), 3);
    }

    #[test]
    fn mem_device_round_trip() {
        round_trip(&mut MemDevice::new());
    }

    #[test]
    fn file_device_round_trip() {
        let dir = std::env::temp_dir().join("pagestore-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("dev-{}.bin", std::process::id()));
        round_trip(&mut FileDevice::create(&path, false).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_device_sync_counts() {
        let dir = std::env::temp_dir().join("pagestore-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("dev-sync-{}.bin", std::process::id()));
        let mut dev = FileDevice::create(&path, true).unwrap();
        dev.write_page(0, &[1u8; PAGE_SIZE]).unwrap();
        dev.write_page(1, &[2u8; PAGE_SIZE]).unwrap();
        assert_eq!(dev.stats().syncs(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sync_barrier_counts_and_is_faultable() {
        let mut mem = MemDevice::new();
        mem.sync().unwrap();
        assert_eq!(mem.stats().syncs(), 1);

        let dir = std::env::temp_dir().join("pagestore-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("dev-barrier-{}.bin", std::process::id()));
        let mut dev = FileDevice::create(&path, false).unwrap();
        dev.write_page(0, &[3u8; PAGE_SIZE]).unwrap();
        dev.sync().unwrap();
        assert_eq!(dev.stats().syncs(), 1);
        std::fs::remove_file(&path).ok();

        // The barrier spends fault budget like reads and writes do.
        let mut faulty = FaultyDevice::new(MemDevice::new(), 1);
        assert!(faulty.sync().is_ok());
        let e = faulty.sync().unwrap_err();
        assert!(!e.is_transient());

        // And the retry layer rides out a transiently failing barrier.
        let flaky = FlakyDevice::with_burst(MemDevice::new(), 0, 2);
        let mut d = RetryDevice::new(flaky, RetryPolicy::immediate(4));
        d.sync().unwrap();
        assert_eq!(d.retries(), 2);
    }

    #[test]
    fn never_written_page_is_zero() {
        let mut dev = MemDevice::new();
        let mut buf = [1u8; PAGE_SIZE];
        dev.read_page(42, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(dev.page_count(), 0);
    }

    #[test]
    fn stats_count_from_threads() {
        let stats = IoStats::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        stats.count_read();
                        stats.count_write();
                    }
                });
            }
        });
        assert_eq!(stats.reads(), 4_000);
        assert_eq!(stats.writes(), 4_000);
        assert_eq!(stats.ops(), 8_000);
    }

    #[test]
    fn devices_are_send() {
        fn is_send<T: Send>() {}
        is_send::<MemDevice>();
        is_send::<FileDevice>();
        is_send::<FaultyDevice<MemDevice>>();
        is_send::<FlakyDevice<MemDevice>>();
        is_send::<RetryDevice<FlakyDevice<MemDevice>>>();
        is_send::<Box<dyn PageDevice>>();
    }
}

#[cfg(test)]
mod faulty_tests {
    use super::*;

    #[test]
    fn fails_after_budget() {
        let mut d = FaultyDevice::new(MemDevice::new(), 2);
        let buf = [0u8; PAGE_SIZE];
        assert!(d.write_page(0, &buf).is_ok());
        assert!(d.write_page(1, &buf).is_ok());
        assert!(d.write_page(2, &buf).is_err());
        let mut rbuf = [0u8; PAGE_SIZE];
        assert!(d.read_page(0, &mut rbuf).is_err());
    }

    #[test]
    fn hard_faults_are_permanent_and_contextual() {
        let mut d = FaultyDevice::new(MemDevice::new(), 0);
        let mut buf = [0u8; PAGE_SIZE];
        let e = d.read_page(7, &mut buf).unwrap_err();
        assert!(!e.is_transient());
        let msg = e.to_string();
        assert!(msg.contains("read of page 7"), "{msg}");
    }

    #[test]
    fn flaky_burst_fails_exact_window() {
        let mut d = FlakyDevice::with_burst(MemDevice::new(), 2, 3);
        let buf = [0u8; PAGE_SIZE];
        assert!(d.write_page(0, &buf).is_ok()); // op 0
        assert!(d.write_page(1, &buf).is_ok()); // op 1
        for _ in 0..3 {
            let e = d.write_page(2, &buf).unwrap_err(); // ops 2..5 fail
            assert!(e.is_transient());
        }
        assert!(d.write_page(2, &buf).is_ok()); // op 5: burst over
        assert_eq!(d.attempts(), 6);
        // The inner device saw only the successful operations.
        assert_eq!(d.stats().writes(), 3);
    }

    #[test]
    fn flaky_probability_is_deterministic_per_seed() {
        let schedule = |seed: u64| -> Vec<bool> {
            let mut d = FlakyDevice::with_probability(MemDevice::new(), 0.3, seed);
            let buf = [0u8; PAGE_SIZE];
            (0..64).map(|_| d.write_page(0, &buf).is_ok()).collect()
        };
        assert_eq!(schedule(1), schedule(1));
        assert_ne!(schedule(1), schedule(2));
        let fails = schedule(1).iter().filter(|ok| !**ok).count();
        assert!((5..30).contains(&fails), "p=0.3 over 64 ops failed {fails} times");
    }

    #[test]
    fn retry_rides_out_transient_burst() {
        let flaky = FlakyDevice::with_burst(MemDevice::new(), 1, 3);
        let mut d = RetryDevice::new(flaky, RetryPolicy::immediate(4));
        let buf = [1u8; PAGE_SIZE];
        d.write_page(0, &buf).unwrap(); // op 0 clean
        d.write_page(1, &buf).unwrap(); // ops 1..4 transient, absorbed
        assert_eq!(d.retries(), 3);
        assert_eq!(d.exhausted(), 0);
        let mut rbuf = [0u8; PAGE_SIZE];
        d.read_page(1, &mut rbuf).unwrap();
        assert_eq!(rbuf[0], 1);
    }

    #[test]
    fn retry_budget_exhaustion_propagates_transient_error() {
        let flaky = FlakyDevice::with_burst(MemDevice::new(), 0, 100);
        let mut d = RetryDevice::new(flaky, RetryPolicy::immediate(3));
        let buf = [0u8; PAGE_SIZE];
        let e = d.write_page(0, &buf).unwrap_err();
        assert!(e.is_transient());
        assert_eq!(d.retries(), 3);
        assert_eq!(d.exhausted(), 1);
    }

    #[test]
    fn retry_telemetry_feeds_registry_per_op() {
        let reg = MetricsRegistry::new();
        let flaky = FlakyDevice::with_burst(MemDevice::new(), 1, 2);
        let mut d = RetryDevice::new(flaky, RetryPolicy::immediate(4));
        d.attach_telemetry(&reg);
        let buf = [1u8; PAGE_SIZE];
        d.write_page(0, &buf).unwrap(); // op 0 clean
        d.write_page(1, &buf).unwrap(); // ops 1..3 transient, absorbed
        let mut rbuf = [0u8; PAGE_SIZE];
        d.read_page(1, &mut rbuf).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("io.retries.write"), Some(2));
        assert_eq!(snap.counter("io.retries.read"), Some(0));
        assert_eq!(snap.counter("io.retry_exhausted"), Some(0));
        // Every absorbed retry recorded a backoff (zero-length here).
        assert_eq!(snap.stage(Stage::RetryBackoff).unwrap().count, 2);

        // Exhaustion counts into the same registry.
        let flaky = FlakyDevice::with_burst(MemDevice::new(), 0, 100);
        let mut d = RetryDevice::new(flaky, RetryPolicy::immediate(1));
        d.attach_telemetry(&reg);
        assert!(d.read_page(0, &mut rbuf).is_err());
        assert_eq!(reg.snapshot().counter("io.retry_exhausted"), Some(1));
    }

    #[test]
    fn retry_does_not_mask_permanent_faults() {
        let faulty = FaultyDevice::new(MemDevice::new(), 0);
        let mut d = RetryDevice::new(faulty, RetryPolicy::immediate(8));
        let buf = [0u8; PAGE_SIZE];
        let e = d.write_page(0, &buf).unwrap_err();
        assert!(!e.is_transient());
        assert_eq!(d.retries(), 0, "permanent faults must not be retried");
    }
}
