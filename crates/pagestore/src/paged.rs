//! A vector of fixed-size records striped over buffer-pool pages.
//!
//! Records never straddle a page boundary (records-per-page =
//! `PAGE_SIZE / record_size`), matching how the "generic on-disk index
//! without disk-specific optimization" of the paper's §6.2 lays out node
//! arrays. The disk-resident SPINE and suffix-tree engines store their node
//! tables in these.

use crate::device::{IoStats, PageDevice, PAGE_SIZE};
use crate::policy::EvictionPolicy;
use crate::pool::BufferPool;
use strindex::Result;

/// A growable array of `record_size`-byte records behind a buffer pool.
pub struct PagedVec {
    pool: BufferPool,
    record_size: usize,
    per_page: usize,
    len: usize,
}

impl PagedVec {
    /// A paged vector over `device` with the given pool capacity (pages)
    /// and eviction policy.
    pub fn new(
        device: Box<dyn PageDevice>,
        pool_pages: usize,
        policy: Box<dyn EvictionPolicy>,
        record_size: usize,
    ) -> Self {
        Self::with_len(device, pool_pages, policy, record_size, 0)
    }

    /// Reattach to a device that already holds `len` records (written by a
    /// previous [`PagedVec`] with the same `record_size`).
    pub fn with_len(
        device: Box<dyn PageDevice>,
        pool_pages: usize,
        policy: Box<dyn EvictionPolicy>,
        record_size: usize,
        len: usize,
    ) -> Self {
        assert!((1..=PAGE_SIZE).contains(&record_size));
        PagedVec {
            pool: BufferPool::new(device, pool_pages, policy),
            record_size,
            per_page: PAGE_SIZE / record_size,
            len,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the vector empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes per record.
    pub fn record_size(&self) -> usize {
        self.record_size
    }

    #[inline]
    fn locate(&self, index: usize) -> (u32, usize) {
        let page = (index / self.per_page) as u32;
        let off = (index % self.per_page) * self.record_size;
        (page, off)
    }

    /// Append a zeroed record, returning its index.
    pub fn push_zeroed(&mut self) -> Result<usize> {
        let index = self.len;
        let (page, off) = self.locate(index);
        let rs = self.record_size;
        self.pool.write(page, |buf| buf[off..off + rs].fill(0))?;
        self.len += 1;
        Ok(index)
    }

    /// Read record `index`.
    pub fn read<R>(&mut self, index: usize, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        assert!(index < self.len, "record {index} out of bounds ({})", self.len);
        let (page, off) = self.locate(index);
        let rs = self.record_size;
        self.pool.read(page, |buf| f(&buf[off..off + rs]))
    }

    /// Mutate record `index`.
    pub fn write<R>(&mut self, index: usize, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        assert!(index < self.len, "record {index} out of bounds ({})", self.len);
        let (page, off) = self.locate(index);
        let rs = self.record_size;
        self.pool.write(page, |buf| f(&mut buf[off..off + rs]))
    }

    /// Flush dirty pages to the device.
    pub fn flush(&mut self) -> Result<()> {
        self.pool.flush()
    }

    /// Device I/O counters.
    pub fn io_stats(&self) -> &IoStats {
        self.pool.io_stats()
    }

    /// The underlying pool (hit/miss counters, policy name).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Mutable access to the pool (pinning, prefetch, scan hints).
    pub fn pool_mut(&mut self) -> &mut BufferPool {
        &mut self.pool
    }

    /// Records striped onto each page.
    pub fn records_per_page(&self) -> usize {
        self.per_page
    }

    /// The page holding record `index` (the uniform fixed-size mapping).
    pub fn page_of(&self, index: usize) -> u32 {
        (index / self.per_page) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use crate::policy::Lru;

    fn pv(record_size: usize, pool_pages: usize) -> PagedVec {
        PagedVec::new(Box::new(MemDevice::new()), pool_pages, Box::<Lru>::default(), record_size)
    }

    #[test]
    fn push_and_round_trip() {
        let mut v = pv(16, 2);
        for i in 0..100usize {
            let idx = v.push_zeroed().unwrap();
            assert_eq!(idx, i);
            v.write(idx, |r| r[..8].copy_from_slice(&(i as u64).to_le_bytes())).unwrap();
        }
        for i in 0..100usize {
            let got = v.read(i, |r| u64::from_le_bytes(r[..8].try_into().unwrap())).unwrap();
            assert_eq!(got, i as u64);
        }
    }

    #[test]
    fn records_do_not_straddle_pages() {
        // 4096 / 100 = 40 records per page with 96 slack bytes.
        let mut v = pv(100, 1);
        for _ in 0..85 {
            v.push_zeroed().unwrap();
        }
        v.write(39, |r| r.fill(1)).unwrap(); // last record of page 0
        v.write(40, |r| r.fill(2)).unwrap(); // first record of page 1
        assert!(v.read(39, |r| r.iter().all(|&b| b == 1)).unwrap());
        assert!(v.read(40, |r| r.iter().all(|&b| b == 2)).unwrap());
    }

    #[test]
    fn survives_eviction_pressure() {
        let mut v = pv(512, 1); // 8 records per page, single-frame pool
        for i in 0..64usize {
            v.push_zeroed().unwrap();
            v.write(i, |r| r[0] = i as u8).unwrap();
        }
        for i in (0..64usize).rev() {
            assert_eq!(v.read(i, |r| r[0]).unwrap(), i as u8);
        }
        assert!(v.io_stats().writes() > 0, "evictions must write back");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let mut v = pv(8, 1);
        v.push_zeroed().unwrap();
        let _ = v.read(1, |_| ());
    }
}
