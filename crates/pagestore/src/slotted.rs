//! Slotted pages for the v2 on-disk node format.
//!
//! Format v1 stripes fixed-size records over pages (`PagedVec`), so every
//! node pays for the fan-out of the *worst* node. Format v2 stores
//! variable-length records in classic slotted pages — the layout of the
//! compact B+Tree pages in decentdb's ADR: a fixed header, a slot offset
//! table, then the records back to back.
//!
//! ```text
//! byte 0        8               8+2(count+1)                    PAGE_SIZE
//! +-------------+---------------+-------------------------+-----------+
//! | PageHeader  | u16 offsets   | record 0 | record 1 | … | (unused)  |
//! | ver kind    | o[0]..o[count]|                         |           |
//! | count first |               |                         |           |
//! +-------------+---------------+-------------------------+-----------+
//! ```
//!
//! Record `i` occupies `page[o[i]..o[i+1]]` — `count + 1` offsets bound
//! `count` records with no per-record length field, and zero-length records
//! are representable. Every page carries its own format version byte;
//! readers check it on **every** access and surface
//! [`strindex::Error::FormatVersion`] ("rebuild required") instead of
//! misparsing a v1 page — defense in depth on top of the file header.

use crate::device::PAGE_SIZE;
use strindex::{Error, Result};

/// On-disk format version written by this build.
pub const PAGE_FORMAT_V2: u8 = 2;

/// Size of the fixed page header.
pub const PAGE_HEADER_LEN: usize = 8;

/// Page kind tags (header byte 1).
pub mod kind {
    /// The per-file header page (page 0).
    pub const FILE_HEADER: u8 = 0;
    /// A page of packed backbone label words.
    pub const LABELS: u8 = 1;
    /// A slotted page of variable-length node records.
    pub const NODES: u8 = 2;
}

/// The fixed 8-byte header at the start of every v2 page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageHeader {
    /// Format version ([`PAGE_FORMAT_V2`]).
    pub version: u8,
    /// What the page holds (see [`kind`]).
    pub kind: u8,
    /// Number of records (slotted pages) or payload items (label pages).
    pub count: u16,
    /// Id of the first item on the page (node id / word index).
    pub first_item: u32,
}

impl PageHeader {
    /// Serialize into the first [`PAGE_HEADER_LEN`] bytes of `page`.
    pub fn write_to(&self, page: &mut [u8]) {
        page[0] = self.version;
        page[1] = self.kind;
        page[2..4].copy_from_slice(&self.count.to_le_bytes());
        page[4..8].copy_from_slice(&self.first_item.to_le_bytes());
    }

    /// Deserialize from the first [`PAGE_HEADER_LEN`] bytes of `page`.
    /// No validation — see [`PageHeader::checked`] for the version gate.
    pub fn read_from(page: &[u8]) -> PageHeader {
        PageHeader {
            version: page[0],
            kind: page[1],
            count: u16::from_le_bytes([page[2], page[3]]),
            first_item: u32::from_le_bytes([page[4], page[5], page[6], page[7]]),
        }
    }

    /// Deserialize and reject any page not stamped with the current format
    /// version and the expected kind.
    pub fn checked(page: &[u8], want_kind: u8) -> Result<PageHeader> {
        let h = Self::read_from(page);
        if h.version != PAGE_FORMAT_V2 {
            return Err(Error::FormatVersion {
                found: h.version as u16,
                expected: PAGE_FORMAT_V2 as u16,
            });
        }
        if h.kind != want_kind {
            return Err(Error::Parse(format!(
                "page kind {} where kind {want_kind} expected",
                h.kind
            )));
        }
        Ok(h)
    }
}

/// Bytes available for slot offsets + record payloads on one page.
const BODY_CAPACITY: usize = PAGE_SIZE - PAGE_HEADER_LEN;

/// Largest single record a slotted page can hold (one record, two offsets).
pub const MAX_RECORD_LEN: usize = BODY_CAPACITY - 2 * 2;

/// Builds one slotted page record by record, then serializes it.
#[derive(Debug)]
pub struct SlottedPageBuilder {
    first_item: u32,
    records: Vec<u8>,
    ends: Vec<u16>,
}

impl SlottedPageBuilder {
    /// An empty page whose first record will be item `first_item`.
    pub fn new(first_item: u32) -> Self {
        SlottedPageBuilder { first_item, records: Vec::new(), ends: Vec::new() }
    }

    /// Number of records pushed so far.
    pub fn count(&self) -> usize {
        self.ends.len()
    }

    /// Would a further record of `len` bytes fit?
    pub fn fits(&self, len: usize) -> bool {
        // Offsets already needed: count + 1; one more record adds one.
        let offsets = (self.ends.len() + 2) * 2;
        offsets + self.records.len() + len <= BODY_CAPACITY
    }

    /// Append a record. Returns `false` (page unchanged) when full — the
    /// caller then finishes this page and starts the next one.
    pub fn push(&mut self, rec: &[u8]) -> bool {
        if !self.fits(rec.len()) || self.ends.len() == u16::MAX as usize {
            return false;
        }
        self.records.extend_from_slice(rec);
        self.ends.push(self.records.len() as u16);
        true
    }

    /// Serialize into a full page image (header, offsets, records).
    pub fn finish(&self) -> [u8; PAGE_SIZE] {
        let mut page = [0u8; PAGE_SIZE];
        let count = self.ends.len();
        PageHeader {
            version: PAGE_FORMAT_V2,
            kind: kind::NODES,
            count: count as u16,
            first_item: self.first_item,
        }
        .write_to(&mut page);
        let base = (PAGE_HEADER_LEN + 2 * (count + 1)) as u16;
        let mut at = PAGE_HEADER_LEN;
        page[at..at + 2].copy_from_slice(&base.to_le_bytes());
        at += 2;
        for &end in &self.ends {
            page[at..at + 2].copy_from_slice(&(base + end).to_le_bytes());
            at += 2;
        }
        page[at..at + self.records.len()].copy_from_slice(&self.records);
        page
    }
}

/// Record `i` of a slotted page, with the version byte checked on every
/// access (a v1 page surfaces "rebuild required", never a misparse).
pub fn slotted_record(page: &[u8], i: usize) -> Result<&[u8]> {
    let h = PageHeader::checked(page, kind::NODES)?;
    if i >= h.count as usize {
        return Err(Error::Parse(format!("record {i} out of range (page holds {})", h.count)));
    }
    let off = |slot: usize| -> usize {
        let at = PAGE_HEADER_LEN + 2 * slot;
        u16::from_le_bytes([page[at], page[at + 1]]) as usize
    };
    let (start, end) = (off(i), off(i + 1));
    if start > end || end > PAGE_SIZE {
        return Err(Error::Parse(format!("corrupt slot bounds {start}..{end} for record {i}")));
    }
    Ok(&page[start..end])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_page_round_trips() {
        let b = SlottedPageBuilder::new(7);
        let page = b.finish();
        let h = PageHeader::checked(&page, kind::NODES).unwrap();
        assert_eq!(h, PageHeader { version: 2, kind: kind::NODES, count: 0, first_item: 7 });
        assert!(slotted_record(&page, 0).is_err());
    }

    #[test]
    fn zero_length_and_max_records() {
        let mut b = SlottedPageBuilder::new(0);
        assert!(b.push(&[]));
        let big = vec![0xABu8; MAX_RECORD_LEN];
        assert!(!b.push(&big), "max record shares no page with another record");
        let mut solo = SlottedPageBuilder::new(1);
        assert!(solo.fits(MAX_RECORD_LEN));
        assert!(!solo.fits(MAX_RECORD_LEN + 1));
        assert!(solo.push(&big));
        assert!(!solo.push(&[]), "page is exactly full");
        let page = solo.finish();
        assert_eq!(slotted_record(&page, 0).unwrap(), &big[..]);
    }

    #[test]
    fn version_byte_is_checked_on_every_access() {
        let mut b = SlottedPageBuilder::new(0);
        b.push(&[1, 2, 3]);
        let mut page = b.finish();
        page[0] = 1; // stamp a v1 version byte
        match slotted_record(&page, 0) {
            Err(Error::FormatVersion { found: 1, expected: 2 }) => {}
            other => panic!("expected FormatVersion, got {other:?}"),
        }
        let msg = slotted_record(&page, 0).unwrap_err().to_string();
        assert!(msg.contains("rebuild required"), "{msg}");
    }

    #[test]
    fn wrong_kind_is_a_parse_error() {
        let mut page = [0u8; PAGE_SIZE];
        PageHeader { version: 2, kind: kind::LABELS, count: 0, first_item: 0 }.write_to(&mut page);
        assert!(matches!(slotted_record(&page, 0), Err(Error::Parse(_))));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn pages_round_trip_arbitrary_records(
            recs in prop::collection::vec(prop::collection::vec(0u8..=255, 0..300), 0..40),
        ) {
            let mut pages: Vec<([u8; PAGE_SIZE], Vec<Vec<u8>>)> = Vec::new();
            let mut b = SlottedPageBuilder::new(0);
            let mut on_page: Vec<Vec<u8>> = Vec::new();
            for r in &recs {
                if !b.push(r) {
                    pages.push((b.finish(), std::mem::take(&mut on_page)));
                    b = SlottedPageBuilder::new(0);
                    prop_assert!(b.push(r), "record must fit an empty page");
                }
                on_page.push(r.to_vec());
            }
            pages.push((b.finish(), on_page));
            for (page, want) in &pages {
                let h = PageHeader::checked(page, kind::NODES).unwrap();
                prop_assert_eq!(h.count as usize, want.len());
                for (i, w) in want.iter().enumerate() {
                    prop_assert_eq!(slotted_record(page, i).unwrap(), &w[..]);
                }
                prop_assert!(slotted_record(page, want.len()).is_err());
            }
        }
    }
}
