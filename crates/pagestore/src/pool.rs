//! The buffer pool: a bounded cache of pages over a [`PageDevice`].
//!
//! Beyond the classic fetch/evict cycle the pool supports the hot-page
//! tier (DESIGN §13): **pinning** (a pinned frame is never chosen as an
//! eviction victim), **prefetch** ([`BufferPool::fetch_many`] plus
//! sequential read-ahead inside scan phases) with hit/waste accounting,
//! and **scan hints** ([`BufferPool::begin_scan`]) forwarded to
//! scan-resistant eviction policies. Frames are tracked floppy-style with
//! an explicit free list (frames released by [`BufferPool::release`]) and
//! a flush list (frames that went dirty since the last flush), so neither
//! allocation nor flushing needs a full frame sweep.

use crate::device::{IoStats, PageDevice, PAGE_SIZE};
use crate::policy::EvictionPolicy;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use strindex::telemetry::MetricsRegistry;
use strindex::{Error, FxHashMap, IoOp, Result};

/// Shared cache counters as relaxed atomics, so observers on other threads
/// (the telemetry registry's gauges, an engine polling a [`BufferPool`] it
/// holds behind a lock) can read them without touching the pool itself.
/// Clone the `Arc` out with [`BufferPool::stats_handle`].
///
/// `misses` counts **every** device page fetch, demand or prefetch — it is
/// the honest pages-transferred signal the serve benchmarks gate on; a
/// wasted prefetch still cost a device read and still shows up here.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    pinned: AtomicU64,
    prefetched: AtomicU64,
    prefetch_hits: AtomicU64,
    prefetch_waste: AtomicU64,
}

impl CacheStats {
    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Relaxed)
    }

    /// Device page fetches so far (demand misses plus prefetch loads).
    pub fn misses(&self) -> u64 {
        self.misses.load(Relaxed)
    }

    /// Frames evicted to make room so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Relaxed)
    }

    /// Frames currently pinned.
    pub fn pinned(&self) -> u64 {
        self.pinned.load(Relaxed)
    }

    /// Pages loaded by prefetch (speculatively, ahead of any access).
    pub fn prefetched(&self) -> u64 {
        self.prefetched.load(Relaxed)
    }

    /// Accesses served from a page that prefetch brought in.
    pub fn prefetch_hits(&self) -> u64 {
        self.prefetch_hits.load(Relaxed)
    }

    /// Prefetched pages evicted before anything touched them.
    pub fn prefetch_waste(&self) -> u64 {
        self.prefetch_waste.load(Relaxed)
    }

    /// One coherent copy of all counters.
    pub fn snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits(),
            misses: self.misses(),
            evictions: self.evictions(),
            pinned: self.pinned(),
            prefetched: self.prefetched(),
            prefetch_hits: self.prefetch_hits(),
            prefetch_waste: self.prefetch_waste(),
        }
    }
}

/// Plain-value copy of [`CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStatsSnapshot {
    /// Cache hits.
    pub hits: u64,
    /// Device page fetches (demand misses plus prefetch loads).
    pub misses: u64,
    /// Frames evicted.
    pub evictions: u64,
    /// Frames currently pinned.
    pub pinned: u64,
    /// Pages loaded speculatively by prefetch.
    pub prefetched: u64,
    /// Accesses served from a prefetched page.
    pub prefetch_hits: u64,
    /// Prefetched pages evicted untouched.
    pub prefetch_waste: u64,
}

impl CacheStatsSnapshot {
    /// Total page accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in [0, 1] (0 when nothing was accessed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    page: u32,
    dirty: bool,
    /// Pin count: while non-zero the frame is never an eviction victim.
    pins: u32,
    /// Loaded by prefetch and not yet touched by a demand access.
    prefetched: bool,
    data: Box<[u8]>,
}

/// A fixed-capacity page cache with a pluggable eviction policy, pinning,
/// and prefetch.
pub struct BufferPool {
    device: Box<dyn PageDevice>,
    policy: Box<dyn EvictionPolicy>,
    capacity: usize,
    frames: Vec<Frame>,
    map: FxHashMap<u32, usize>,
    /// Frames released back to the pool, reusable before growing.
    free: Vec<usize>,
    /// Frames that went dirty since the last flush. May hold stale entries
    /// (a frame cleaned by eviction write-back, or re-listed after a
    /// flush); [`BufferPool::flush`] skips any frame that is clean when it
    /// gets there.
    flush_list: Vec<usize>,
    /// Nesting depth of scan phases; policies see only the 0↔1 edges.
    scan_depth: u32,
    /// Pages of sequential read-ahead issued on a demand miss inside a
    /// scan phase (0 = off).
    read_ahead: usize,
    stats: Arc<CacheStats>,
}

impl BufferPool {
    /// A pool caching at most `capacity` pages of `device`, evicting with
    /// `policy`.
    pub fn new(
        device: Box<dyn PageDevice>,
        capacity: usize,
        mut policy: Box<dyn EvictionPolicy>,
    ) -> Self {
        assert!(capacity >= 1);
        policy.capacity_hint(capacity);
        BufferPool {
            device,
            policy,
            capacity,
            frames: Vec::new(),
            map: FxHashMap::default(),
            free: Vec::new(),
            flush_list: Vec::new(),
            scan_depth: 0,
            read_ahead: 0,
            stats: Arc::new(CacheStats::default()),
        }
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.stats.hits()
    }

    /// Device page fetches so far (demand misses plus prefetch loads).
    pub fn misses(&self) -> u64 {
        self.stats.misses()
    }

    /// Frames evicted to make room so far.
    pub fn evictions(&self) -> u64 {
        self.stats.evictions()
    }

    /// Hit ratio in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        self.stats.snapshot().hit_rate()
    }

    /// A shareable handle to this pool's cache counters; stays live (and
    /// keeps counting) for as long as the pool does.
    pub fn stats_handle(&self) -> Arc<CacheStats> {
        Arc::clone(&self.stats)
    }

    /// Register this pool's cache counters as gauges on `registry`:
    /// `{prefix}.hits` / `.misses` / `.evictions` plus the hot-tier
    /// gauges `.pinned`, `.prefetch_hits`, and `.prefetch_waste`, all
    /// polled live at snapshot time.
    pub fn attach_telemetry(&self, registry: &MetricsRegistry, prefix: &str) {
        let g = |f: fn(&CacheStats) -> u64| {
            let s = self.stats_handle();
            move || f(&s)
        };
        registry.gauge(&format!("{prefix}.hits"), g(CacheStats::hits));
        registry.gauge(&format!("{prefix}.misses"), g(CacheStats::misses));
        registry.gauge(&format!("{prefix}.evictions"), g(CacheStats::evictions));
        registry.gauge(&format!("{prefix}.pinned"), g(CacheStats::pinned));
        registry.gauge(&format!("{prefix}.prefetch_hits"), g(CacheStats::prefetch_hits));
        registry.gauge(&format!("{prefix}.prefetch_waste"), g(CacheStats::prefetch_waste));
    }

    /// Device I/O counters.
    pub fn io_stats(&self) -> &IoStats {
        self.device.stats()
    }

    /// The eviction policy's name (experiment output).
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Enable `pages` of sequential read-ahead on demand misses inside a
    /// scan phase (0 disables). Read-ahead loads are advisory: their I/O
    /// errors are swallowed, their fetches still count as misses.
    pub fn set_read_ahead(&mut self, pages: usize) {
        self.read_ahead = pages;
    }

    /// Enter a sequential-scan phase: forwards a scan hint to the eviction
    /// policy (so scan-resistant policies stop promoting) and arms
    /// read-ahead. Nests; pair every call with [`BufferPool::end_scan`].
    pub fn begin_scan(&mut self) {
        self.scan_depth += 1;
        if self.scan_depth == 1 {
            self.policy.scan_hint(true);
        }
    }

    /// Leave a sequential-scan phase (see [`BufferPool::begin_scan`]).
    pub fn end_scan(&mut self) {
        if self.scan_depth > 0 {
            self.scan_depth -= 1;
            if self.scan_depth == 0 {
                self.policy.scan_hint(false);
            }
        }
    }

    /// Frames currently pinned.
    pub fn pinned_count(&self) -> usize {
        self.stats.pinned() as usize
    }

    /// Whether `page` is resident with a non-zero pin count.
    pub fn is_pinned(&self, page: u32) -> bool {
        self.map.get(&page).is_some_and(|&f| self.frames[f].pins > 0)
    }

    /// Pin `page`: fetch it if absent and exempt its frame from eviction
    /// until a matching [`BufferPool::unpin`]. Returns `Ok(false)` without
    /// pinning when doing so would leave the pool with no evictable frame
    /// (at least one frame must stay unpinned so demand fetches can make
    /// progress); pinning is advisory, never a correctness requirement.
    pub fn pin(&mut self, page: u32) -> Result<bool> {
        let newly_pinned_frame = !self.is_pinned(page);
        if newly_pinned_frame && self.pinned_count() + 1 >= self.capacity {
            return Ok(false);
        }
        let frame = match self.fetch_inner(page, false)? {
            Some(f) => f,
            None => return Ok(false),
        };
        let fr = &mut self.frames[frame];
        fr.pins += 1;
        if fr.pins == 1 {
            self.stats.pinned.fetch_add(1, Relaxed);
        }
        Ok(true)
    }

    /// Drop one pin from `page`. Returns false if the page was not pinned.
    pub fn unpin(&mut self, page: u32) -> bool {
        let Some(&f) = self.map.get(&page) else { return false };
        let fr = &mut self.frames[f];
        if fr.pins == 0 {
            return false;
        }
        fr.pins -= 1;
        if fr.pins == 0 {
            self.stats.pinned.fetch_sub(1, Relaxed);
        }
        true
    }

    /// Drop *all* pins from every frame. Returns how many distinct pages
    /// were released from pinned state.
    pub fn unpin_all(&mut self) -> usize {
        let mut released = 0;
        for fr in &mut self.frames {
            if fr.pins > 0 {
                fr.pins = 0;
                released += 1;
                self.stats.pinned.fetch_sub(1, Relaxed);
            }
        }
        released
    }

    /// Prefetch `pages` in order: load whichever are absent, marking them
    /// prefetched for hit/waste accounting. Stops early (without error)
    /// when no evictable frame is left. Returns how many pages were
    /// actually fetched from the device.
    pub fn fetch_many(&mut self, pages: impl IntoIterator<Item = u32>) -> Result<usize> {
        let mut loaded = 0;
        for page in pages {
            let before = self.stats.misses();
            match self.fetch_inner(page, true)? {
                Some(_) => loaded += usize::from(self.stats.misses() > before),
                None => break,
            }
        }
        Ok(loaded)
    }

    /// Cooperatively evict `page` if resident and unpinned: write it back
    /// when dirty and put its frame on the free list. Returns whether the
    /// page was released.
    pub fn release(&mut self, page: u32) -> Result<bool> {
        let Some(&f) = self.map.get(&page) else { return Ok(false) };
        if self.frames[f].pins > 0 {
            return Ok(false);
        }
        let fr = &mut self.frames[f];
        if fr.dirty {
            self.device
                .write_page(fr.page, &fr.data)
                .map_err(|e| e.with_io_context(IoOp::Write, fr.page))?;
            fr.dirty = false;
        }
        if fr.prefetched {
            fr.prefetched = false;
            self.stats.prefetch_waste.fetch_add(1, Relaxed);
        }
        fr.page = u32::MAX;
        self.map.remove(&page);
        self.free.push(f);
        Ok(true)
    }

    /// Ensure `page` is resident; return its frame index. With `prefetch`
    /// set the load is speculative: a resident page is left untouched (no
    /// hit accounting, no policy access) and `Ok(None)` — not an error —
    /// signals that every frame is pinned.
    fn fetch_inner(&mut self, page: u32, prefetch: bool) -> Result<Option<usize>> {
        if let Some(&f) = self.map.get(&page) {
            if prefetch {
                return Ok(Some(f));
            }
            self.stats.hits.fetch_add(1, Relaxed);
            let fr = &mut self.frames[f];
            if fr.prefetched {
                fr.prefetched = false;
                self.stats.prefetch_hits.fetch_add(1, Relaxed);
            }
            self.policy.on_access(f, page);
            return Ok(Some(f));
        }
        let frame = if let Some(f) = self.free.pop() {
            f
        } else if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page: u32::MAX,
                dirty: false,
                pins: 0,
                prefetched: false,
                data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
            });
            self.frames.len() - 1
        } else {
            let pinned: Vec<bool> = self.frames.iter().map(|fr| fr.pins > 0).collect();
            match self.policy.victim(&pinned) {
                Some(victim) => {
                    debug_assert_eq!(self.frames[victim].pins, 0, "policy evicted a pinned frame");
                    let old = &mut self.frames[victim];
                    if old.dirty {
                        self.device
                            .write_page(old.page, &old.data)
                            .map_err(|e| e.with_io_context(IoOp::Write, old.page))?;
                        old.dirty = false;
                    }
                    if old.prefetched {
                        old.prefetched = false;
                        self.stats.prefetch_waste.fetch_add(1, Relaxed);
                    }
                    self.map.remove(&old.page);
                    self.stats.evictions.fetch_add(1, Relaxed);
                    victim
                }
                None if prefetch => return Ok(None),
                None => {
                    return Err(Error::Unsupported("buffer pool exhausted: every frame is pinned"))
                }
            }
        };
        self.stats.misses.fetch_add(1, Relaxed);
        if prefetch {
            self.stats.prefetched.fetch_add(1, Relaxed);
        }
        self.device
            .read_page(page, &mut self.frames[frame].data)
            .map_err(|e| e.with_io_context(IoOp::Read, page))?;
        let fr = &mut self.frames[frame];
        fr.page = page;
        fr.dirty = false;
        fr.pins = 0;
        fr.prefetched = prefetch;
        self.map.insert(page, frame);
        self.policy.on_load(frame, page);
        Ok(Some(frame))
    }

    /// Ensure `page` is resident; return its frame index.
    fn fetch(&mut self, page: u32) -> Result<usize> {
        let before = self.stats.misses();
        let frame =
            self.fetch_inner(page, false)?.expect("demand fetch_inner returns a frame or errors");
        // Demand miss inside a scan: pull the next pages of the device in
        // behind it. Advisory — I/O errors here are swallowed (the demand
        // page is already resident), but the fetches still count. The demand
        // frame is transiently pinned so the read-ahead loads cannot evict
        // the very frame we are about to return.
        if self.scan_depth > 0 && self.read_ahead > 0 && self.stats.misses() > before {
            self.frames[frame].pins += 1;
            let limit = self.device.page_count();
            for ahead in 1..=self.read_ahead as u32 {
                let next = page.saturating_add(ahead);
                if next >= limit {
                    break;
                }
                if self.fetch_inner(next, true).unwrap_or(None).is_none() {
                    break;
                }
            }
            self.frames[frame].pins -= 1;
        }
        Ok(frame)
    }

    /// Read access to `page`.
    pub fn read<R>(&mut self, page: u32, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let frame = self.fetch(page)?;
        Ok(f(&self.frames[frame].data))
    }

    /// Write access to `page` (marks it dirty).
    pub fn write<R>(&mut self, page: u32, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let frame = self.fetch(page)?;
        if !self.frames[frame].dirty {
            self.frames[frame].dirty = true;
            self.flush_list.push(frame);
        }
        Ok(f(&mut self.frames[frame].data))
    }

    /// Write every dirty frame back to the device (walks the flush list,
    /// not the whole frame table).
    pub fn flush(&mut self) -> Result<()> {
        while let Some(frame) = self.flush_list.pop() {
            let fr = &mut self.frames[frame];
            if !fr.dirty {
                continue; // stale entry: cleaned by eviction write-back
            }
            self.device
                .write_page(fr.page, &fr.data)
                .map_err(|e| e.with_io_context(IoOp::Flush, fr.page))
                .inspect_err(|_| self.flush_list.push(frame))?;
            fr.dirty = false;
        }
        Ok(())
    }

    /// Durability barrier: flush every dirty frame, then ask the device to
    /// put all acknowledged writes on stable storage. Sealing and manifest
    /// commits place this between the data body and the commit record so
    /// the write order the format relies on survives a crash.
    pub fn sync(&mut self) -> Result<()> {
        self.flush()?;
        self.device.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use crate::policy::{Lru, PrefixPriority, SegmentedLru};

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Box::new(MemDevice::new()), cap, Box::<Lru>::default())
    }

    #[test]
    fn read_your_writes_through_cache() {
        let mut p = pool(2);
        p.write(0, |b| b[10] = 42).unwrap();
        assert_eq!(p.read(0, |b| b[10]).unwrap(), 42);
        assert_eq!(p.misses(), 1);
        assert_eq!(p.hits(), 1);
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        let mut p = pool(1);
        p.write(0, |b| b[0] = 1).unwrap();
        p.write(1, |b| b[0] = 2).unwrap(); // evicts page 0, must flush it
        p.write(2, |b| b[0] = 3).unwrap();
        assert_eq!(p.read(0, |b| b[0]).unwrap(), 1);
        assert_eq!(p.read(1, |b| b[0]).unwrap(), 2);
        assert_eq!(p.read(2, |b| b[0]).unwrap(), 3);
    }

    #[test]
    fn hit_rate_reflects_locality() {
        let mut seq = pool(4);
        for round in 0..10 {
            for page in 0..4u32 {
                seq.read(page, |_| ()).unwrap();
                let _ = round;
            }
        }
        assert!(seq.hit_rate() > 0.8, "rate {}", seq.hit_rate());
        // A pool of 1 thrashing over 4 pages never hits.
        let mut thrash = pool(1);
        for _ in 0..5 {
            for page in 0..4u32 {
                thrash.read(page, |_| ()).unwrap();
            }
        }
        assert_eq!(thrash.hits(), 0);
    }

    #[test]
    fn flush_writes_dirty_frames_once() {
        let mut p = pool(4);
        p.write(0, |b| b[0] = 9).unwrap();
        p.write(1, |b| b[0] = 8).unwrap();
        p.flush().unwrap();
        let w = p.io_stats().writes();
        p.flush().unwrap(); // nothing dirty anymore
        assert_eq!(p.io_stats().writes(), w);
    }

    #[test]
    fn sync_flushes_then_issues_device_barrier() {
        let mut p = pool(4);
        p.write(0, |b| b[0] = 1).unwrap();
        p.sync().unwrap();
        assert_eq!(p.io_stats().writes(), 1);
        assert_eq!(p.io_stats().syncs(), 1);
        p.sync().unwrap(); // nothing dirty: barrier only
        assert_eq!(p.io_stats().writes(), 1);
        assert_eq!(p.io_stats().syncs(), 2);
    }

    #[test]
    fn prefix_priority_protects_low_pages() {
        let mut p =
            BufferPool::new(Box::new(MemDevice::new()), 2, Box::<PrefixPriority>::default());
        p.read(0, |_| ()).unwrap();
        p.read(50, |_| ()).unwrap();
        p.read(60, |_| ()).unwrap(); // evicts 50, not 0
        let misses = p.misses();
        p.read(0, |_| ()).unwrap(); // still resident
        assert_eq!(p.misses(), misses);
    }

    #[test]
    fn cache_stats_handle_counts_evictions_and_outlives_borrows() {
        // Regression for the Cell-based counters: stats must be readable
        // from a shared handle (Sync) and evictions must be counted.
        fn is_sync<T: Sync + Send>(_: &T) {}
        let mut p = pool(2);
        let stats = p.stats_handle();
        is_sync(&*stats);
        assert_eq!(stats.evictions(), 0);
        p.read(0, |_| ()).unwrap();
        p.read(1, |_| ()).unwrap();
        p.read(2, |_| ()).unwrap(); // full pool: this miss evicts
        let snap = stats.snapshot();
        assert_eq!(snap.misses, 3);
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.accesses(), 3);
        assert_eq!(snap.hit_rate(), 0.0);
        assert_eq!(CacheStatsSnapshot::default().hit_rate(), 0.0);
    }

    #[test]
    fn attach_telemetry_registers_live_gauges() {
        let reg = MetricsRegistry::new();
        let mut p = pool(1);
        p.attach_telemetry(&reg, "pool");
        p.read(0, |_| ()).unwrap();
        p.read(1, |_| ()).unwrap(); // evicts page 0
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("pool.misses"), Some(2));
        assert_eq!(snap.gauge("pool.evictions"), Some(1));
        assert_eq!(snap.gauge("pool.hits"), Some(0));
        assert_eq!(snap.gauge("pool.pinned"), Some(0));
        assert_eq!(snap.gauge("pool.prefetch_hits"), Some(0));
        assert_eq!(snap.gauge("pool.prefetch_waste"), Some(0));
    }

    #[test]
    fn pinned_pages_survive_any_traffic() {
        let mut p = pool(3);
        p.write(7, |b| b[0] = 77).unwrap();
        assert!(p.pin(7).unwrap());
        assert!(p.is_pinned(7));
        assert_eq!(p.pinned_count(), 1);
        let misses_after_pin = p.misses();
        for page in 100..160u32 {
            p.read(page, |_| ()).unwrap();
        }
        // Page 7 never left: re-reading it is a hit.
        let m = p.misses();
        assert_eq!(p.read(7, |b| b[0]).unwrap(), 77);
        assert_eq!(p.misses(), m);
        assert!(p.misses() > misses_after_pin);
        assert!(p.unpin(7));
        assert!(!p.is_pinned(7));
        assert!(!p.unpin(7), "second unpin of a single pin must fail");
    }

    #[test]
    fn pin_refuses_to_exhaust_the_pool() {
        let mut p = pool(2);
        assert!(p.pin(0).unwrap());
        // A second pinned frame would leave nothing evictable.
        assert!(!p.pin(1).unwrap());
        assert_eq!(p.pinned_count(), 1);
        // Re-pinning an already-pinned page is fine (same frame).
        assert!(p.pin(0).unwrap());
        assert!(p.unpin(0));
        assert!(p.is_pinned(0), "first unpin drops to one outstanding pin");
        assert!(p.unpin(0));
        assert!(!p.is_pinned(0));
    }

    #[test]
    fn fetch_many_counts_loads_and_marks_prefetch() {
        let mut p = pool(4);
        p.read(0, |_| ()).unwrap();
        let loaded = p.fetch_many([0, 1, 2]).unwrap();
        assert_eq!(loaded, 2, "page 0 was already resident");
        assert_eq!(p.stats_handle().prefetched(), 2);
        // Touching a prefetched page counts a prefetch hit, once.
        p.read(1, |_| ()).unwrap();
        p.read(1, |_| ()).unwrap();
        assert_eq!(p.stats_handle().prefetch_hits(), 1);
        // Evicting the untouched page 2 counts waste.
        p.read(10, |_| ()).unwrap();
        p.read(11, |_| ()).unwrap();
        p.read(12, |_| ()).unwrap();
        p.read(13, |_| ()).unwrap();
        assert_eq!(p.stats_handle().prefetch_waste(), 1);
    }

    #[test]
    fn scan_read_ahead_turns_sequential_misses_into_hits() {
        let mut dev = MemDevice::new();
        for page in 0..16u32 {
            dev.write_page(page, &[page as u8; PAGE_SIZE]).unwrap();
        }
        let mut p = BufferPool::new(Box::new(dev), 8, Box::<SegmentedLru>::default());
        p.set_read_ahead(4);
        p.begin_scan();
        for page in 0..16u32 {
            assert_eq!(p.read(page, |b| b[0]).unwrap(), page as u8);
        }
        p.end_scan();
        let s = p.stats_handle().snapshot();
        // Only every 5th page demand-misses; the rest ride the read-ahead.
        assert!(s.hits >= 12, "hits {}", s.hits);
        assert!(s.prefetch_hits >= 12, "prefetch hits {}", s.prefetch_hits);
        assert_eq!(s.misses, 16, "every device fetch is still a miss: {}", s.misses);
    }

    #[test]
    fn release_frees_frame_for_reuse() {
        let mut p = pool(2);
        p.write(0, |b| b[0] = 5).unwrap();
        assert!(p.release(0).unwrap());
        assert!(!p.release(0).unwrap(), "already released");
        // The write was persisted on release.
        assert_eq!(p.read(0, |b| b[0]).unwrap(), 5);
        // A pinned page refuses to release.
        p.pin(0).unwrap();
        assert!(!p.release(0).unwrap());
    }

    #[test]
    fn all_pinned_pool_errors_on_demand_miss() {
        let mut p = pool(1);
        // Capacity 1 refuses the pin that would exhaust it.
        assert!(!p.pin(0).unwrap());
        // Force the exhaustion path via a pool of 2 with both frames held:
        // one pinned, one pinned via a second page is refused, so instead
        // pin one and fill + pin attempt on the other.
        let mut p2 = pool(2);
        assert!(p2.pin(0).unwrap());
        p2.read(1, |_| ()).unwrap();
        // Demand miss can still evict the unpinned frame.
        p2.read(2, |_| ()).unwrap();
        assert_eq!(p2.read(0, |b| b.len()).unwrap(), PAGE_SIZE);
    }

    #[test]
    fn scan_hint_protects_hot_set_under_slru() {
        // Hot set: pages 0..4 touched twice (promoted). Then a long scan
        // sweeps pages 100..140 through a 8-frame pool. Under SLRU the hot
        // pages survive; re-reading them afterwards stays hit-only.
        let mut p = BufferPool::new(Box::new(MemDevice::new()), 8, Box::<SegmentedLru>::default());
        for page in 0..4u32 {
            p.read(page, |_| ()).unwrap();
            p.read(page, |_| ()).unwrap();
        }
        p.begin_scan();
        for page in 100..140u32 {
            p.read(page, |_| ()).unwrap();
        }
        p.end_scan();
        let misses = p.misses();
        for page in 0..4u32 {
            p.read(page, |_| ()).unwrap();
        }
        assert_eq!(p.misses(), misses, "scan flushed the hot set");
    }
}
