//! The buffer pool: a bounded cache of pages over a [`PageDevice`].

use crate::device::{IoStats, PageDevice, PAGE_SIZE};
use crate::policy::EvictionPolicy;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use strindex::telemetry::MetricsRegistry;
use strindex::{FxHashMap, IoOp, Result};

/// Shared cache counters: hits, misses, and evictions as relaxed atomics,
/// so observers on other threads (the telemetry registry's gauges, an
/// engine polling a [`BufferPool`] it holds behind a lock) can read them
/// without touching the pool itself. Clone the `Arc` out with
/// [`BufferPool::stats_handle`].
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheStats {
    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Relaxed)
    }

    /// Frames evicted to make room so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Relaxed)
    }

    /// One coherent copy of all three counters.
    pub fn snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot { hits: self.hits(), misses: self.misses(), evictions: self.evictions() }
    }
}

/// Plain-value copy of [`CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStatsSnapshot {
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Frames evicted.
    pub evictions: u64,
}

impl CacheStatsSnapshot {
    /// Total page accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in [0, 1] (0 when nothing was accessed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    page: u32,
    dirty: bool,
    data: Box<[u8]>,
}

/// A fixed-capacity page cache with a pluggable eviction policy.
pub struct BufferPool {
    device: Box<dyn PageDevice>,
    policy: Box<dyn EvictionPolicy>,
    capacity: usize,
    frames: Vec<Frame>,
    map: FxHashMap<u32, usize>,
    stats: Arc<CacheStats>,
}

impl BufferPool {
    /// A pool caching at most `capacity` pages of `device`, evicting with
    /// `policy`.
    pub fn new(
        device: Box<dyn PageDevice>,
        capacity: usize,
        policy: Box<dyn EvictionPolicy>,
    ) -> Self {
        assert!(capacity >= 1);
        BufferPool {
            device,
            policy,
            capacity,
            frames: Vec::new(),
            map: FxHashMap::default(),
            stats: Arc::new(CacheStats::default()),
        }
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.stats.hits()
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.stats.misses()
    }

    /// Frames evicted to make room so far.
    pub fn evictions(&self) -> u64 {
        self.stats.evictions()
    }

    /// Hit ratio in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        self.stats.snapshot().hit_rate()
    }

    /// A shareable handle to this pool's cache counters; stays live (and
    /// keeps counting) for as long as the pool does.
    pub fn stats_handle(&self) -> Arc<CacheStats> {
        Arc::clone(&self.stats)
    }

    /// Register this pool's cache counters as `{prefix}.hits` /
    /// `{prefix}.misses` / `{prefix}.evictions` gauges on `registry`,
    /// polled live at snapshot time.
    pub fn attach_telemetry(&self, registry: &MetricsRegistry, prefix: &str) {
        let s = self.stats_handle();
        registry.gauge(&format!("{prefix}.hits"), move || s.hits());
        let s = self.stats_handle();
        registry.gauge(&format!("{prefix}.misses"), move || s.misses());
        let s = self.stats_handle();
        registry.gauge(&format!("{prefix}.evictions"), move || s.evictions());
    }

    /// Device I/O counters.
    pub fn io_stats(&self) -> &IoStats {
        self.device.stats()
    }

    /// The eviction policy's name (experiment output).
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Ensure `page` is resident; return its frame index.
    fn fetch(&mut self, page: u32) -> Result<usize> {
        if let Some(&f) = self.map.get(&page) {
            self.stats.hits.fetch_add(1, Relaxed);
            self.policy.on_access(f, page);
            return Ok(f);
        }
        self.stats.misses.fetch_add(1, Relaxed);
        let frame = if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page: u32::MAX,
                dirty: false,
                data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
            });
            self.frames.len() - 1
        } else {
            let victim = self.policy.victim();
            let old = &mut self.frames[victim];
            if old.dirty {
                self.device
                    .write_page(old.page, &old.data)
                    .map_err(|e| e.with_io_context(IoOp::Write, old.page))?;
                old.dirty = false;
            }
            self.map.remove(&old.page);
            self.stats.evictions.fetch_add(1, Relaxed);
            victim
        };
        self.device
            .read_page(page, &mut self.frames[frame].data)
            .map_err(|e| e.with_io_context(IoOp::Read, page))?;
        self.frames[frame].page = page;
        self.frames[frame].dirty = false;
        self.map.insert(page, frame);
        self.policy.on_load(frame, page);
        Ok(frame)
    }

    /// Read access to `page`.
    pub fn read<R>(&mut self, page: u32, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let frame = self.fetch(page)?;
        Ok(f(&self.frames[frame].data))
    }

    /// Write access to `page` (marks it dirty).
    pub fn write<R>(&mut self, page: u32, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let frame = self.fetch(page)?;
        self.frames[frame].dirty = true;
        Ok(f(&mut self.frames[frame].data))
    }

    /// Write every dirty frame back to the device.
    pub fn flush(&mut self) -> Result<()> {
        for frame in &mut self.frames {
            if frame.dirty {
                self.device
                    .write_page(frame.page, &frame.data)
                    .map_err(|e| e.with_io_context(IoOp::Flush, frame.page))?;
                frame.dirty = false;
            }
        }
        Ok(())
    }

    /// Durability barrier: flush every dirty frame, then ask the device to
    /// put all acknowledged writes on stable storage. Sealing and manifest
    /// commits place this between the data body and the commit record so
    /// the write order the format relies on survives a crash.
    pub fn sync(&mut self) -> Result<()> {
        self.flush()?;
        self.device.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use crate::policy::{Lru, PrefixPriority};

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Box::new(MemDevice::new()), cap, Box::<Lru>::default())
    }

    #[test]
    fn read_your_writes_through_cache() {
        let mut p = pool(2);
        p.write(0, |b| b[10] = 42).unwrap();
        assert_eq!(p.read(0, |b| b[10]).unwrap(), 42);
        assert_eq!(p.misses(), 1);
        assert_eq!(p.hits(), 1);
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        let mut p = pool(1);
        p.write(0, |b| b[0] = 1).unwrap();
        p.write(1, |b| b[0] = 2).unwrap(); // evicts page 0, must flush it
        p.write(2, |b| b[0] = 3).unwrap();
        assert_eq!(p.read(0, |b| b[0]).unwrap(), 1);
        assert_eq!(p.read(1, |b| b[0]).unwrap(), 2);
        assert_eq!(p.read(2, |b| b[0]).unwrap(), 3);
    }

    #[test]
    fn hit_rate_reflects_locality() {
        let mut seq = pool(4);
        for round in 0..10 {
            for page in 0..4u32 {
                seq.read(page, |_| ()).unwrap();
                let _ = round;
            }
        }
        assert!(seq.hit_rate() > 0.8, "rate {}", seq.hit_rate());
        // A pool of 1 thrashing over 4 pages never hits.
        let mut thrash = pool(1);
        for _ in 0..5 {
            for page in 0..4u32 {
                thrash.read(page, |_| ()).unwrap();
            }
        }
        assert_eq!(thrash.hits(), 0);
    }

    #[test]
    fn flush_writes_dirty_frames_once() {
        let mut p = pool(4);
        p.write(0, |b| b[0] = 9).unwrap();
        p.write(1, |b| b[0] = 8).unwrap();
        p.flush().unwrap();
        let w = p.io_stats().writes();
        p.flush().unwrap(); // nothing dirty anymore
        assert_eq!(p.io_stats().writes(), w);
    }

    #[test]
    fn sync_flushes_then_issues_device_barrier() {
        let mut p = pool(4);
        p.write(0, |b| b[0] = 1).unwrap();
        p.sync().unwrap();
        assert_eq!(p.io_stats().writes(), 1);
        assert_eq!(p.io_stats().syncs(), 1);
        p.sync().unwrap(); // nothing dirty: barrier only
        assert_eq!(p.io_stats().writes(), 1);
        assert_eq!(p.io_stats().syncs(), 2);
    }

    #[test]
    fn prefix_priority_protects_low_pages() {
        let mut p =
            BufferPool::new(Box::new(MemDevice::new()), 2, Box::<PrefixPriority>::default());
        p.read(0, |_| ()).unwrap();
        p.read(50, |_| ()).unwrap();
        p.read(60, |_| ()).unwrap(); // evicts 50, not 0
        let misses = p.misses();
        p.read(0, |_| ()).unwrap(); // still resident
        assert_eq!(p.misses(), misses);
    }

    #[test]
    fn cache_stats_handle_counts_evictions_and_outlives_borrows() {
        // Regression for the Cell-based counters: stats must be readable
        // from a shared handle (Sync) and evictions must be counted.
        fn is_sync<T: Sync + Send>(_: &T) {}
        let mut p = pool(2);
        let stats = p.stats_handle();
        is_sync(&*stats);
        assert_eq!(stats.evictions(), 0);
        p.read(0, |_| ()).unwrap();
        p.read(1, |_| ()).unwrap();
        p.read(2, |_| ()).unwrap(); // full pool: this miss evicts
        let snap = stats.snapshot();
        assert_eq!(snap.misses, 3);
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.accesses(), 3);
        assert_eq!(snap.hit_rate(), 0.0);
        assert_eq!(CacheStatsSnapshot::default().hit_rate(), 0.0);
    }

    #[test]
    fn attach_telemetry_registers_live_gauges() {
        let reg = MetricsRegistry::new();
        let mut p = pool(1);
        p.attach_telemetry(&reg, "pool");
        p.read(0, |_| ()).unwrap();
        p.read(1, |_| ()).unwrap(); // evicts page 0
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("pool.misses"), Some(2));
        assert_eq!(snap.gauge("pool.evictions"), Some(1));
        assert_eq!(snap.gauge("pool.hits"), Some(0));
    }
}
