//! LEB128 variable-length integers for the v2 on-disk node format.
//!
//! Format v2 stores node control fields (link destination, LEL, fan-out
//! counts) and delta-encoded destinations as unsigned LEB128: 7 value bits
//! per byte, high bit set on every byte but the last. Small values — the
//! overwhelming majority after delta encoding — cost one byte instead of
//! the fixed four of format v1.

/// Maximum encoded size of a `u64` (⌈64/7⌉ bytes).
pub const MAX_VARINT_LEN: usize = 10;

/// Append `v` to `out` as unsigned LEB128. Returns the encoded length.
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
        n += 1;
    }
    out.push(v as u8);
    n
}

/// Encoded length of `v` without writing it.
#[inline]
pub fn varint_len(v: u64) -> usize {
    ((64 - (v | 1).leading_zeros()) as usize).div_ceil(7)
}

/// Decode one LEB128 integer from `buf[at..]`, returning `(value,
/// bytes_consumed)`. `None` on truncation or a >10-byte (overlong/overflow)
/// encoding — corrupt-page defense, not a panic path.
#[inline]
pub fn read_varint(buf: &[u8], at: usize) -> Option<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &b) in buf.get(at..)?.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return None;
        }
        let low = (b & 0x7F) as u64;
        if shift == 63 && low > 1 {
            return None; // would overflow u64
        }
        v |= low << shift;
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
        shift += 7;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_encodings() {
        let mut max = vec![0xFFu8; 9];
        max.push(0x01);
        let cases: Vec<(u64, Vec<u8>)> = vec![
            (0, vec![0x00]),
            (1, vec![0x01]),
            (127, vec![0x7F]),
            (128, vec![0x80, 0x01]),
            (300, vec![0xAC, 0x02]),
            (u64::MAX, max),
        ];
        for (v, bytes) in cases {
            let mut out = Vec::new();
            assert_eq!(write_varint(&mut out, v), bytes.len(), "{v}");
            assert_eq!(out, bytes, "{v}");
            assert_eq!(varint_len(v), bytes.len(), "{v}");
            assert_eq!(read_varint(&out, 0), Some((v, bytes.len())), "{v}");
        }
    }

    #[test]
    fn truncated_and_overlong_inputs_fail_cleanly() {
        assert_eq!(read_varint(&[], 0), None);
        assert_eq!(read_varint(&[0x80], 0), None); // continuation, then EOF
        assert_eq!(read_varint(&[0x80, 0x80], 0), None);
        assert_eq!(read_varint(&[0x01], 5), None); // offset past the end
                                                   // 11 continuation bytes: longer than any valid u64 encoding.
        assert_eq!(read_varint(&[0x80; 11], 0), None);
        // 10 bytes whose top byte overflows 64 bits.
        let mut overflow = vec![0xFF; 9];
        overflow.push(0x7F);
        assert_eq!(read_varint(&overflow, 0), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn round_trips_at_any_offset(v in 0u64..=u64::MAX, pad in 0usize..8) {
            let mut buf = vec![0xAAu8; pad];
            let n = write_varint(&mut buf, v);
            prop_assert_eq!(n, varint_len(v));
            buf.extend_from_slice(&[0x55, 0x55]); // trailing noise must be ignored
            prop_assert_eq!(read_varint(&buf, pad), Some((v, n)));
        }

        #[test]
        fn small_values_stay_small(v in 0u64..128) {
            prop_assert_eq!(varint_len(v), 1);
        }

        #[test]
        fn streams_round_trip(vs in prop::collection::vec(0u64..=u64::MAX, 0..50)) {
            let mut buf = Vec::new();
            for &v in &vs {
                write_varint(&mut buf, v);
            }
            let mut at = 0;
            let mut got = Vec::new();
            while at < buf.len() {
                let (v, n) = read_varint(&buf, at).unwrap();
                got.push(v);
                at += n;
            }
            prop_assert_eq!(got, vs);
        }
    }
}
