//! Disk substrate for the SPINE reproduction.
//!
//! The paper's §6.2 experiments run the indexes disk-resident ("generic …
//! indexes on disk without any extra disk-specific optimization", with
//! synchronous writes). This crate provides that environment:
//!
//! * [`device`] — a page-granular storage device. [`device::MemDevice`]
//!   counts every page read/write (the locality signal the paper's disk
//!   numbers express); [`device::FileDevice`] is a real file,
//!   optionally fsync-per-write to reproduce the paper's `O_SYNC` artifact.
//! * [`pool`] — a buffer pool (frame table + hash map) with pluggable
//!   eviction.
//! * [`policy`] — LRU, FIFO, Clock, the scan-resistant
//!   [`policy::SegmentedLru`] used by the hot-page tier, and the paper's
//!   SPINE-specific **prefix-priority** policy ("retain as much as possible
//!   of the top part of the Link Table in memory", justified by Figure 8's
//!   link-destination distribution).
//! * [`paged`] — [`paged::PagedVec`]: a vector of fixed-size
//!   records striped over pages; the disk-resident SPINE and suffix-tree
//!   engines store their node arrays in these.

pub mod device;
pub mod paged;
pub mod policy;
pub mod pool;
pub mod slotted;
pub mod varint;

pub use device::{
    FaultyDevice, FileDevice, FlakyDevice, IoStats, MemDevice, PageDevice, RetryDevice,
    RetryPolicy, PAGE_SIZE,
};
pub use paged::PagedVec;
pub use policy::{Clock, EvictionPolicy, Fifo, Lru, PrefixPriority, SegmentedLru};
pub use pool::{BufferPool, CacheStats, CacheStatsSnapshot};
pub use slotted::{slotted_record, PageHeader, SlottedPageBuilder, PAGE_FORMAT_V2};
pub use varint::{read_varint, varint_len, write_varint, MAX_VARINT_LEN};
