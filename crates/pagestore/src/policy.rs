//! Buffer-pool eviction policies.
//!
//! Besides the generic LRU/FIFO/Clock, [`PrefixPriority`] implements the
//! paper's SPINE-specific recommendation: because link destinations
//! concentrate on the *upstream* part of the backbone (Figure 8), the best
//! simple policy is "retain as much as possible of the top part of the Link
//! Table in memory" — i.e. always evict the page holding the
//! highest-numbered records.
//!
//! [`SegmentedLru`] is the scan-resistant default for the hot-page tier: a
//! page must be touched *twice* (outside a scan) before it earns a slot in
//! the protected segment, so a one-pass occurrence scan over the whole link
//! table cannot flush the hot set the way plain LRU lets it.

/// Chooses which frame to evict. Frames are dense indices `0..capacity`;
/// the pool reports every access and load.
///
/// `Send` so pools (and the disk indexes built over them) can move across
/// threads and live behind a mutex shared by a worker pool.
pub trait EvictionPolicy: Send {
    /// A page already resident in `frame` was accessed.
    fn on_access(&mut self, frame: usize, page: u32);

    /// `page` was loaded into `frame` (after a miss or initial fill).
    fn on_load(&mut self, frame: usize, page: u32);

    /// The pool entered (`true`) or left (`false`) a sequential-scan phase.
    /// Scan-resistant policies use this to keep one-pass traffic out of
    /// their protected set; the rest ignore it.
    fn scan_hint(&mut self, _active: bool) {}

    /// The pool announces its frame capacity once at construction, before
    /// any load. Policies that size internal segments against the full
    /// pool (not just the frames allocated so far) use it.
    fn capacity_hint(&mut self, _frames: usize) {}

    /// Pick the frame to evict. `pinned[f]` is true for frames the pool
    /// must keep resident; return `None` only when every frame is pinned.
    /// All frames are occupied when called.
    fn victim(&mut self, pinned: &[bool]) -> Option<usize>;

    /// Human-readable name for experiment output.
    fn name(&self) -> &'static str;
}

fn unpinned(pinned: &[bool], frame: usize) -> bool {
    !pinned.get(frame).copied().unwrap_or(false)
}

/// Least-recently-used (timestamp scan).
#[derive(Default)]
pub struct Lru {
    clock: u64,
    stamp: Vec<u64>,
}

impl EvictionPolicy for Lru {
    fn on_access(&mut self, frame: usize, _page: u32) {
        self.clock += 1;
        self.stamp[frame] = self.clock;
    }

    fn on_load(&mut self, frame: usize, _page: u32) {
        if self.stamp.len() <= frame {
            self.stamp.resize(frame + 1, 0);
        }
        self.clock += 1;
        self.stamp[frame] = self.clock;
    }

    fn victim(&mut self, pinned: &[bool]) -> Option<usize> {
        self.stamp
            .iter()
            .enumerate()
            .filter(|&(i, _)| unpinned(pinned, i))
            .min_by_key(|&(_, &s)| s)
            .map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

/// First-in-first-out by load order.
#[derive(Default)]
pub struct Fifo {
    clock: u64,
    loaded: Vec<u64>,
}

impl EvictionPolicy for Fifo {
    fn on_access(&mut self, _frame: usize, _page: u32) {}

    fn on_load(&mut self, frame: usize, _page: u32) {
        if self.loaded.len() <= frame {
            self.loaded.resize(frame + 1, 0);
        }
        self.clock += 1;
        self.loaded[frame] = self.clock;
    }

    fn victim(&mut self, pinned: &[bool]) -> Option<usize> {
        self.loaded
            .iter()
            .enumerate()
            .filter(|&(i, _)| unpinned(pinned, i))
            .min_by_key(|&(_, &s)| s)
            .map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Second-chance clock.
#[derive(Default)]
pub struct Clock {
    hand: usize,
    referenced: Vec<bool>,
}

impl EvictionPolicy for Clock {
    fn on_access(&mut self, frame: usize, _page: u32) {
        self.referenced[frame] = true;
    }

    fn on_load(&mut self, frame: usize, _page: u32) {
        if self.referenced.len() <= frame {
            self.referenced.resize(frame + 1, false);
        }
        self.referenced[frame] = true;
    }

    fn victim(&mut self, pinned: &[bool]) -> Option<usize> {
        if !pinned.iter().take(self.referenced.len()).any(|&p| !p)
            && pinned.len() >= self.referenced.len()
        {
            return None;
        }
        // Two full sweeps bound the search: the first clears reference
        // bits, the second must find an unreferenced unpinned frame.
        let mut steps = 2 * self.referenced.len() + 1;
        loop {
            if self.hand >= self.referenced.len() {
                self.hand = 0;
            }
            let f = self.hand;
            self.hand += 1;
            if !unpinned(pinned, f) {
                continue;
            }
            if self.referenced[f] {
                self.referenced[f] = false;
            } else {
                return Some(f);
            }
            steps -= 1;
            if steps == 0 {
                return Some(f);
            }
        }
    }

    fn name(&self) -> &'static str {
        "clock"
    }
}

/// The paper's SPINE buffering strategy: evict the frame holding the
/// highest page number, so the low-numbered pages — the top of the Link
/// Table, where Figure 8 shows links concentrate — stay resident.
#[derive(Default)]
pub struct PrefixPriority {
    pages: Vec<u32>,
}

impl EvictionPolicy for PrefixPriority {
    fn on_access(&mut self, _frame: usize, _page: u32) {}

    fn on_load(&mut self, frame: usize, page: u32) {
        if self.pages.len() <= frame {
            self.pages.resize(frame + 1, 0);
        }
        self.pages[frame] = page;
    }

    fn victim(&mut self, pinned: &[bool]) -> Option<usize> {
        self.pages
            .iter()
            .enumerate()
            .filter(|&(i, _)| unpinned(pinned, i))
            .max_by_key(|&(_, &p)| p)
            .map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "prefix-priority"
    }
}

/// Scan-resistant segmented LRU.
///
/// Frames live in one of two segments. A freshly loaded page enters the
/// *probationary* segment; a re-access promotes it to the *protected*
/// segment (capped at 4/5 of the frames, LRU-demoted back to probationary
/// when over). Victims come from the probationary segment first, so pages
/// touched exactly once — the signature of a sequential occurrence scan —
/// recycle among themselves while the twice-touched hot set survives.
/// During a [`scan_hint`](EvictionPolicy::scan_hint) phase promotions are
/// suppressed entirely: even a page the scan touches repeatedly cannot
/// displace protected members.
#[derive(Default)]
pub struct SegmentedLru {
    clock: u64,
    stamp: Vec<u64>,
    protected: Vec<bool>,
    scanning: bool,
    capacity: usize,
}

impl SegmentedLru {
    fn protected_cap(&self) -> usize {
        // Sized against the full pool (capacity_hint), not the frames
        // allocated so far, or early promotions demote each other during
        // warmup. At least one protected slot in any case.
        ((self.capacity.max(self.stamp.len()) * 4) / 5).max(1)
    }

    fn demote_lru_protected(&mut self) {
        if let Some(f) = self
            .protected
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p)
            .min_by_key(|&(i, _)| self.stamp[i])
            .map(|(i, _)| i)
        {
            self.protected[f] = false;
        }
    }
}

impl EvictionPolicy for SegmentedLru {
    fn on_access(&mut self, frame: usize, _page: u32) {
        self.clock += 1;
        self.stamp[frame] = self.clock;
        if !self.protected[frame] && !self.scanning {
            self.protected[frame] = true;
            if self.protected.iter().filter(|&&p| p).count() > self.protected_cap() {
                self.demote_lru_protected();
            }
        }
    }

    fn on_load(&mut self, frame: usize, _page: u32) {
        if self.stamp.len() <= frame {
            self.stamp.resize(frame + 1, 0);
            self.protected.resize(frame + 1, false);
        }
        self.clock += 1;
        self.stamp[frame] = self.clock;
        self.protected[frame] = false;
    }

    fn scan_hint(&mut self, active: bool) {
        self.scanning = active;
    }

    fn capacity_hint(&mut self, frames: usize) {
        self.capacity = frames;
    }

    fn victim(&mut self, pinned: &[bool]) -> Option<usize> {
        let lru_of = |want_protected: bool, this: &Self| {
            this.stamp
                .iter()
                .enumerate()
                .filter(|&(i, _)| this.protected[i] == want_protected && unpinned(pinned, i))
                .min_by_key(|&(_, &s)| s)
                .map(|(i, _)| i)
        };
        lru_of(false, self).or_else(|| lru_of(true, self))
    }

    fn name(&self) -> &'static str {
        "segmented-lru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NONE_PINNED: &[bool] = &[false; 8];

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = Lru::default();
        p.on_load(0, 10);
        p.on_load(1, 11);
        p.on_load(2, 12);
        p.on_access(0, 10); // 1 is now the stalest
        assert_eq!(p.victim(NONE_PINNED), Some(1));
    }

    #[test]
    fn lru_skips_pinned_frames() {
        let mut p = Lru::default();
        p.on_load(0, 10);
        p.on_load(1, 11);
        assert_eq!(p.victim(&[true, false]), Some(1));
        assert_eq!(p.victim(&[true, true]), None);
    }

    #[test]
    fn fifo_ignores_accesses() {
        let mut p = Fifo::default();
        p.on_load(0, 10);
        p.on_load(1, 11);
        p.on_access(0, 10);
        assert_eq!(p.victim(NONE_PINNED), Some(0));
    }

    #[test]
    fn clock_gives_second_chances() {
        let mut p = Clock::default();
        p.on_load(0, 1);
        p.on_load(1, 2);
        // Both referenced: first sweep clears, second sweep evicts frame 0.
        assert_eq!(p.victim(NONE_PINNED), Some(0));
        // Frame 1's bit was cleared by the sweep, so it goes next.
        assert_eq!(p.victim(NONE_PINNED), Some(1));
    }

    #[test]
    fn clock_respects_pins() {
        let mut p = Clock::default();
        p.on_load(0, 1);
        p.on_load(1, 2);
        assert_eq!(p.victim(&[true, false]), Some(1));
        assert_eq!(p.victim(&[true, true]), None);
    }

    #[test]
    fn prefix_priority_keeps_low_pages() {
        let mut p = PrefixPriority::default();
        p.on_load(0, 3);
        p.on_load(1, 99);
        p.on_load(2, 7);
        assert_eq!(p.victim(NONE_PINNED), Some(1));
    }

    #[test]
    fn slru_promotes_on_reaccess_and_evicts_probationary_first() {
        let mut p = SegmentedLru::default();
        for f in 0..5 {
            p.on_load(f, f as u32);
        }
        p.on_access(0, 0); // frame 0 → protected
                           // Frame 1 is the LRU *probationary* frame; frame 0 survives even
                           // though nothing else was touched since.
        assert_eq!(p.victim(NONE_PINNED), Some(1));
    }

    #[test]
    fn slru_scan_hint_suppresses_promotion() {
        let mut p = SegmentedLru::default();
        for f in 0..4 {
            p.on_load(f, f as u32);
        }
        p.on_access(0, 0); // promoted before the scan
        p.scan_hint(true);
        p.on_access(1, 1); // scan re-touch: stays probationary
        p.on_access(2, 2);
        p.scan_hint(false);
        // LRU probationary is frame 3 (loaded last but never re-accessed
        // after 1 and 2 were re-stamped) — frame 0 stays protected.
        let v = p.victim(NONE_PINNED).unwrap();
        assert_ne!(v, 0, "protected frame evicted despite probationary candidates");
    }

    #[test]
    fn slru_protected_cap_demotes_lru_member() {
        let mut p = SegmentedLru::default();
        for f in 0..5 {
            p.on_load(f, f as u32);
        }
        // Cap is 4/5·5 = 4: promoting a fifth frame demotes the LRU one.
        for f in 0..5 {
            p.on_access(f, f as u32);
        }
        assert_eq!(p.protected.iter().filter(|&&x| x).count(), 4);
        assert!(!p.protected[0], "oldest promotion should have been demoted");
    }

    #[test]
    fn slru_falls_back_to_protected_when_no_probationary() {
        let mut p = SegmentedLru::default();
        p.on_load(0, 0);
        p.on_load(1, 1);
        p.on_access(0, 0);
        p.on_access(1, 1);
        // Both protected: must still yield a victim.
        assert_eq!(p.victim(NONE_PINNED), Some(0));
        assert_eq!(p.victim(&[true, true]), None);
    }
}
