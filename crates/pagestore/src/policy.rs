//! Buffer-pool eviction policies.
//!
//! Besides the generic LRU/FIFO/Clock, [`PrefixPriority`] implements the
//! paper's SPINE-specific recommendation: because link destinations
//! concentrate on the *upstream* part of the backbone (Figure 8), the best
//! simple policy is "retain as much as possible of the top part of the Link
//! Table in memory" — i.e. always evict the page holding the
//! highest-numbered records.

/// Chooses which frame to evict. Frames are dense indices `0..capacity`;
/// the pool reports every access and load.
///
/// `Send` so pools (and the disk indexes built over them) can move across
/// threads and live behind a mutex shared by a worker pool.
pub trait EvictionPolicy: Send {
    /// A page already resident in `frame` was accessed.
    fn on_access(&mut self, frame: usize, page: u32);

    /// `page` was loaded into `frame` (after a miss or initial fill).
    fn on_load(&mut self, frame: usize, page: u32);

    /// Pick the frame to evict (all frames are occupied when called).
    fn victim(&mut self) -> usize;

    /// Human-readable name for experiment output.
    fn name(&self) -> &'static str;
}

/// Least-recently-used (timestamp scan).
#[derive(Default)]
pub struct Lru {
    clock: u64,
    stamp: Vec<u64>,
}

impl EvictionPolicy for Lru {
    fn on_access(&mut self, frame: usize, _page: u32) {
        self.clock += 1;
        self.stamp[frame] = self.clock;
    }

    fn on_load(&mut self, frame: usize, _page: u32) {
        if self.stamp.len() <= frame {
            self.stamp.resize(frame + 1, 0);
        }
        self.clock += 1;
        self.stamp[frame] = self.clock;
    }

    fn victim(&mut self) -> usize {
        self.stamp
            .iter()
            .enumerate()
            .min_by_key(|&(_, &s)| s)
            .map(|(i, _)| i)
            .expect("pool has frames")
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

/// First-in-first-out by load order.
#[derive(Default)]
pub struct Fifo {
    clock: u64,
    loaded: Vec<u64>,
}

impl EvictionPolicy for Fifo {
    fn on_access(&mut self, _frame: usize, _page: u32) {}

    fn on_load(&mut self, frame: usize, _page: u32) {
        if self.loaded.len() <= frame {
            self.loaded.resize(frame + 1, 0);
        }
        self.clock += 1;
        self.loaded[frame] = self.clock;
    }

    fn victim(&mut self) -> usize {
        self.loaded
            .iter()
            .enumerate()
            .min_by_key(|&(_, &s)| s)
            .map(|(i, _)| i)
            .expect("pool has frames")
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Second-chance clock.
#[derive(Default)]
pub struct Clock {
    hand: usize,
    referenced: Vec<bool>,
}

impl EvictionPolicy for Clock {
    fn on_access(&mut self, frame: usize, _page: u32) {
        self.referenced[frame] = true;
    }

    fn on_load(&mut self, frame: usize, _page: u32) {
        if self.referenced.len() <= frame {
            self.referenced.resize(frame + 1, false);
        }
        self.referenced[frame] = true;
    }

    fn victim(&mut self) -> usize {
        loop {
            if self.hand >= self.referenced.len() {
                self.hand = 0;
            }
            if self.referenced[self.hand] {
                self.referenced[self.hand] = false;
                self.hand += 1;
            } else {
                let v = self.hand;
                self.hand += 1;
                return v;
            }
        }
    }

    fn name(&self) -> &'static str {
        "clock"
    }
}

/// The paper's SPINE buffering strategy: evict the frame holding the
/// highest page number, so the low-numbered pages — the top of the Link
/// Table, where Figure 8 shows links concentrate — stay resident.
#[derive(Default)]
pub struct PrefixPriority {
    pages: Vec<u32>,
}

impl EvictionPolicy for PrefixPriority {
    fn on_access(&mut self, _frame: usize, _page: u32) {}

    fn on_load(&mut self, frame: usize, page: u32) {
        if self.pages.len() <= frame {
            self.pages.resize(frame + 1, 0);
        }
        self.pages[frame] = page;
    }

    fn victim(&mut self) -> usize {
        self.pages
            .iter()
            .enumerate()
            .max_by_key(|&(_, &p)| p)
            .map(|(i, _)| i)
            .expect("pool has frames")
    }

    fn name(&self) -> &'static str {
        "prefix-priority"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = Lru::default();
        p.on_load(0, 10);
        p.on_load(1, 11);
        p.on_load(2, 12);
        p.on_access(0, 10); // 1 is now the stalest
        assert_eq!(p.victim(), 1);
    }

    #[test]
    fn fifo_ignores_accesses() {
        let mut p = Fifo::default();
        p.on_load(0, 10);
        p.on_load(1, 11);
        p.on_access(0, 10);
        assert_eq!(p.victim(), 0);
    }

    #[test]
    fn clock_gives_second_chances() {
        let mut p = Clock::default();
        p.on_load(0, 1);
        p.on_load(1, 2);
        // Both referenced: first sweep clears, second sweep evicts frame 0.
        assert_eq!(p.victim(), 0);
        // Frame 1's bit was cleared by the sweep, so it goes next.
        assert_eq!(p.victim(), 1);
    }

    #[test]
    fn prefix_priority_keeps_low_pages() {
        let mut p = PrefixPriority::default();
        p.on_load(0, 3);
        p.on_load(1, 99);
        p.on_load(2, 7);
        assert_eq!(p.victim(), 1);
    }
}
