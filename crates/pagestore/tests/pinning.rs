//! Pinning contract, enforced under arbitrary traffic.
//!
//! A pinned page is a promise: whatever the eviction policy, whatever the
//! fetch/scan/prefetch sequence thrown at the pool, the frame stays
//! resident and its bytes stay addressable. These proptests drive pools
//! with every shipped policy through random operation scripts and check
//! the promise after every step.

use pagestore::{BufferPool, Clock, EvictionPolicy, Fifo, Lru, MemDevice, SegmentedLru};
use proptest::prelude::*;

const PAGES: u32 = 24;

/// Pool over a device with `PAGES` distinct pages (page `p` is filled with
/// byte `p`), with the pages in `pins` pinned.
fn pinned_pool(capacity: usize, policy: Box<dyn EvictionPolicy>, pins: &[u32]) -> BufferPool {
    let mut pool = BufferPool::new(Box::new(MemDevice::new()), capacity, policy);
    for p in 0..PAGES {
        pool.write(p, |b| b[0] = p as u8).unwrap();
    }
    pool.flush().unwrap();
    for &p in pins {
        assert!(pool.pin(p).unwrap(), "pin budget must admit {} pins", pins.len());
    }
    pool
}

/// One step of random traffic against the pool, decoded from a generated
/// `(kind, page, n)` tuple: 0 = read, 1 = write, 2 = prefetch `n` pages
/// from `page`, 3 = scan begin, 4 = scan end.
#[derive(Debug, Clone, Copy)]
enum Op {
    Read(u32),
    Write(u32),
    Prefetch(u32, u8),
    ScanBegin,
    ScanEnd,
}

fn decode(kind: usize, page: u32, n: u8) -> Op {
    match kind {
        0 => Op::Read(page),
        1 => Op::Write(page),
        2 => Op::Prefetch(page, n),
        3 => Op::ScanBegin,
        _ => Op::ScanEnd,
    }
}

fn policy_for(kind: usize) -> Box<dyn EvictionPolicy> {
    match kind {
        0 => Box::<Lru>::default(),
        1 => Box::<Clock>::default(),
        2 => Box::<Fifo>::default(),
        _ => Box::<SegmentedLru>::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pinned pages survive arbitrary fetch/scan/prefetch sequences: still
    /// reported pinned, still serving the right bytes, and never charged an
    /// eviction — under every eviction policy in the crate.
    #[test]
    fn pinned_pages_are_never_evicted(
        policy_kind in 0usize..4,
        pin_a in 0..PAGES,
        pin_b in 0..PAGES,
        read_ahead in 0usize..4,
        raw_ops in prop::collection::vec((0usize..5, 0u32..PAGES, 1u8..6), 1..120),
    ) {
        let ops: Vec<Op> = raw_ops.into_iter().map(|(k, p, n)| decode(k, p, n)).collect();
        let pins: Vec<u32> = if pin_a == pin_b { vec![pin_a] } else { vec![pin_a, pin_b] };
        // Capacity 4 with up to 2 pins: tight enough that unpinned traffic
        // constantly evicts, roomy enough that the pin budget admits both.
        let mut pool = pinned_pool(4, policy_for(policy_kind), &pins);
        pool.set_read_ahead(read_ahead);
        for op in &ops {
            match *op {
                Op::Read(p) => { pool.read(p, |b| b[0]).unwrap(); }
                Op::Write(p) => { pool.write(p, |b| b[1] = b[1].wrapping_add(1)).unwrap(); }
                Op::Prefetch(p, n) => {
                    pool.fetch_many((p..PAGES.min(p + n as u32)).collect::<Vec<_>>()).unwrap();
                }
                Op::ScanBegin => pool.begin_scan(),
                Op::ScanEnd => pool.end_scan(),
            }
            for &p in &pins {
                prop_assert!(pool.is_pinned(p), "page {} lost its pin after {:?}", p, op);
                // A resident pinned page costs no device traffic to read.
                let before = pool.misses();
                prop_assert_eq!(pool.read(p, |b| b[0]).unwrap(), p as u8);
                prop_assert_eq!(pool.misses(), before, "pinned page {} was re-fetched", p);
            }
        }
        prop_assert_eq!(pool.pinned_count(), pins.len());
        prop_assert_eq!(pool.unpin_all(), pins.len());
        prop_assert_eq!(pool.pinned_count(), 0);
    }

    /// When every frame but one is pinned, demand fetches still succeed by
    /// cycling through the single free frame, and prefetch degrades to a
    /// polite no-op instead of an error.
    #[test]
    fn single_free_frame_still_serves(reads in prop::collection::vec(0..PAGES, 1..60)) {
        let mut pool = pinned_pool(4, Box::<Lru>::default(), &[0, 1, 2]);
        for &p in &reads {
            prop_assert_eq!(pool.read(p, |b| b[0]).unwrap(), p as u8);
        }
        // Prefetch wants frames it cannot evict: Ok, not an error.
        pool.fetch_many(0..PAGES).unwrap();
        for p in [0u32, 1, 2] {
            prop_assert!(pool.is_pinned(p));
        }
    }
}
