//! Fault-injection tests: storage failures must surface as errors, never
//! panics or silent corruption.

use pagestore::{BufferPool, FaultyDevice, Lru, MemDevice, PagedVec, PAGE_SIZE};

#[test]
fn pool_propagates_read_faults() {
    let dev = FaultyDevice::new(MemDevice::new(), 3);
    let mut pool = BufferPool::new(Box::new(dev), 2, Box::<Lru>::default());
    // Ops 1..=3 succeed (each miss = one read).
    assert!(pool.read(0, |_| ()).is_ok());
    assert!(pool.read(1, |_| ()).is_ok());
    assert!(pool.read(2, |_| ()).is_ok());
    // Budget spent: the next miss must error out.
    assert!(pool.read(3, |_| ()).is_err());
    // Cached pages keep working (no device traffic).
    assert!(pool.read(2, |_| ()).is_ok());
}

#[test]
fn pool_propagates_eviction_write_faults() {
    let dev = FaultyDevice::new(MemDevice::new(), 1);
    let mut pool = BufferPool::new(Box::new(dev), 1, Box::<Lru>::default());
    pool.write(0, |b| b[0] = 1).unwrap(); // read (op 1) + dirty in cache
                                          // Evicting the dirty frame needs a write → injected fault.
    assert!(pool.read(1, |_| ()).is_err());
}

#[test]
fn paged_vec_propagates_faults() {
    let dev = FaultyDevice::new(MemDevice::new(), 3);
    let mut v = PagedVec::new(Box::new(dev), 1, Box::<Lru>::default(), PAGE_SIZE / 4);
    for _ in 0..4 {
        v.push_zeroed().unwrap(); // page 0: one device read (op 1)
    }
    // Page 1: evicts dirty page 0 (write, op 2) then reads page 1 (op 3).
    v.push_zeroed().unwrap();
    // Re-reading page 0 must evict dirty page 1 (write, op 4): fault.
    assert!(v.read(0, |_| ()).is_err());
}

#[test]
fn flush_fault_is_an_error() {
    let dev = FaultyDevice::new(MemDevice::new(), 1);
    let mut pool = BufferPool::new(Box::new(dev), 2, Box::<Lru>::default());
    pool.write(0, |b| b[0] = 7).unwrap(); // op 1 (read on miss)
    assert!(pool.flush().is_err()); // write is op 2 → fault
}
