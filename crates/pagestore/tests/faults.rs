//! Fault-injection tests: storage failures must surface as errors, never
//! panics or silent corruption — and transient ones must be absorbable by
//! the retry layer without the pool noticing.

use pagestore::{
    BufferPool, FaultyDevice, FlakyDevice, Lru, MemDevice, PagedVec, RetryDevice, RetryPolicy,
    PAGE_SIZE,
};
use strindex::IoOp;

#[test]
fn pool_propagates_read_faults() {
    let dev = FaultyDevice::new(MemDevice::new(), 3);
    let mut pool = BufferPool::new(Box::new(dev), 2, Box::<Lru>::default());
    // Ops 1..=3 succeed (each miss = one read).
    assert!(pool.read(0, |_| ()).is_ok());
    assert!(pool.read(1, |_| ()).is_ok());
    assert!(pool.read(2, |_| ()).is_ok());
    // Budget spent: the next miss must error out.
    assert!(pool.read(3, |_| ()).is_err());
    // Cached pages keep working (no device traffic).
    assert!(pool.read(2, |_| ()).is_ok());
}

#[test]
fn pool_propagates_eviction_write_faults() {
    let dev = FaultyDevice::new(MemDevice::new(), 1);
    let mut pool = BufferPool::new(Box::new(dev), 1, Box::<Lru>::default());
    pool.write(0, |b| b[0] = 1).unwrap(); // read (op 1) + dirty in cache
                                          // Evicting the dirty frame needs a write → injected fault.
    assert!(pool.read(1, |_| ()).is_err());
}

#[test]
fn paged_vec_propagates_faults() {
    let dev = FaultyDevice::new(MemDevice::new(), 3);
    let mut v = PagedVec::new(Box::new(dev), 1, Box::<Lru>::default(), PAGE_SIZE / 4);
    for _ in 0..4 {
        v.push_zeroed().unwrap(); // page 0: one device read (op 1)
    }
    // Page 1: evicts dirty page 0 (write, op 2) then reads page 1 (op 3).
    v.push_zeroed().unwrap();
    // Re-reading page 0 must evict dirty page 1 (write, op 4): fault.
    assert!(v.read(0, |_| ()).is_err());
}

#[test]
fn flush_fault_is_an_error() {
    let dev = FaultyDevice::new(MemDevice::new(), 1);
    let mut pool = BufferPool::new(Box::new(dev), 2, Box::<Lru>::default());
    pool.write(0, |b| b[0] = 7).unwrap(); // op 1 (read on miss)
    assert!(pool.flush().is_err()); // write is op 2 → fault
}

#[test]
fn pool_errors_carry_operation_context() {
    let dev = FaultyDevice::new(MemDevice::new(), 3);
    let mut pool = BufferPool::new(Box::new(dev), 2, Box::<Lru>::default());
    pool.read(0, |_| ()).unwrap();
    pool.read(1, |_| ()).unwrap();
    pool.read(2, |_| ()).unwrap();
    let err = pool.read(7, |_| ()).unwrap_err();
    let ctx = err.io_context().expect("pool reads must annotate their errors");
    assert_eq!(ctx.op, IoOp::Read);
    assert_eq!(ctx.page, Some(7));
    let msg = err.to_string();
    assert!(msg.contains("read of page 7"), "context missing from message: {msg}");
    assert!(msg.contains("permanent"), "hard faults must read as permanent: {msg}");
}

#[test]
fn retry_layer_hides_transient_faults_from_the_pool() {
    // Ops 5..25 fail transiently; 8 retries per op ride out any schedule
    // where at least one attempt in 9 lands outside the burst — here each
    // retried op eventually exits the window as attempts advance.
    let flaky = FlakyDevice::with_burst(MemDevice::new(), 5, 4);
    let retry = RetryDevice::new(flaky, RetryPolicy::immediate(8));
    let mut vec = PagedVec::new(Box::new(retry), 1, Box::<Lru>::default(), PAGE_SIZE / 4);
    let records = 24;
    for i in 0..records {
        let idx = vec.push_zeroed().unwrap();
        vec.write(idx, |r| r[0] = i as u8).unwrap();
    }
    vec.flush().unwrap();
    for i in 0..records {
        assert_eq!(vec.read(i, |r| r[0]).unwrap(), i as u8, "record {i} corrupted");
    }
}

#[test]
fn retry_layer_does_not_hide_permanent_faults() {
    // A permanent fault after 2 ops: the retry layer must give up at once.
    let faulty = FaultyDevice::new(MemDevice::new(), 2);
    let retry = RetryDevice::new(faulty, RetryPolicy::immediate(8));
    let mut pool = BufferPool::new(Box::new(retry), 1, Box::<Lru>::default());
    pool.read(0, |_| ()).unwrap();
    pool.read(1, |_| ()).unwrap();
    let err = pool.read(2, |_| ()).unwrap_err();
    assert!(!err.is_transient());
}

#[test]
fn exhausted_retry_budget_propagates_the_transient_error() {
    // Every op fails: even 8 retries cannot save the first read.
    let flaky = FlakyDevice::with_burst(MemDevice::new(), 0, u64::MAX);
    let retry = RetryDevice::new(flaky, RetryPolicy::immediate(8));
    let mut pool = BufferPool::new(Box::new(retry), 1, Box::<Lru>::default());
    let err = pool.read(0, |_| ()).unwrap_err();
    assert!(err.is_transient(), "the last transient error is what the caller sees");
    assert!(err.to_string().contains("transient"), "taxonomy visible in message");
}
